// Package peephole implements the paper's assembly-level postprocessor
// ("A Postprocessor"): a simple peephole optimizer that removes most of
// the object-code overhead introduced by KEEP_LIVE, derived from a SPARC
// instruction scheduler. It "first performs a simple global,
// intraprocedural analysis that allows us to identify possible uses of
// register values. It subsequently looks for one of the following three
// patterns inside each basic block and transforms them appropriately":
//
//  1. add  x,y,z            ==>  ld [x+y]
//     ld   [z], ...
//  2. mov  x,z              ==>  ...x...
//     ...z...
//  3. add  x,y,z            ==>  add x,y,w
//     mov  z,w
//
// The safety constraints from the paper are honoured: the rewritten
// register must have no other uses, and "the transformation could not
// apply if z were originally mentioned as the second argument of a
// KEEP_LIVE" — KEEP_LIVE base operands count as uses in the analysis, so
// that constraint falls out of the use check. The KeepLive
// pseudo-instruction itself survives fusion (it is empty and free), keeping
// its base-liveness effect intact, which is the paper's argument (1) that
// the transformations "cannot invalidate KEEP_LIVE semantics".
package peephole

import "gcsafety/internal/machine"

// Stats reports what the postprocessor changed.
type Stats struct {
	Fused       int // pattern 1: address adds folded into memory operations
	CopiesGone  int // pattern 2: copies forwarded and removed
	Retargeted  int // pattern 3: adds retargeted through a copy
	InstrsAfter int
}

// Optimize postprocesses every function in the program in place.
func Optimize(prog *machine.Program, cfg machine.Config) Stats {
	var st Stats
	for _, name := range prog.Order {
		f := prog.Funcs[name]
		f.Code = optimizeFunc(f.Code, cfg, &st)
		st.InstrsAfter += f.Size()
	}
	return st
}

func optimizeFunc(code []machine.Instr, cfg machine.Config, st *Stats) []machine.Instr {
	for pass := 0; pass < 8; pass++ {
		changed := false
		a := analyze(code)
		if cfg.LoadIndexed {
			if c, n := fuseAddLoad(code, a); c {
				code, changed = n, true
				st.Fused++
				continue
			}
		}
		if c, n := forwardCopy(code, a); c {
			code, changed = n, true
			st.CopiesGone++
			continue
		}
		if c, n := retargetAdd(code, a); c {
			code, changed = n, true
			st.Retargeted++
			continue
		}
		if !changed {
			break
		}
	}
	return code
}

// analysis holds block structure and per-block liveness of physical
// registers (the "possible uses of register values").
type analysis struct {
	code    []machine.Instr
	starts  []int
	liveOut []map[machine.Reg]bool
}

func analyze(code []machine.Instr) *analysis {
	a := &analysis{code: code}
	a.starts = append(a.starts, 0)
	labelBlock := map[int32]int{}
	for i, in := range code {
		switch in.Op {
		case machine.Label:
			if i != 0 {
				a.starts = append(a.starts, i)
			}
		case machine.Jmp, machine.Bz, machine.Bnz, machine.Ret:
			if i+1 < len(code) {
				a.starts = append(a.starts, i+1)
			}
		}
	}
	// dedupe sorted starts
	uniq := a.starts[:0]
	prev := -1
	for _, s := range a.starts {
		if s != prev {
			uniq = append(uniq, s)
			prev = s
		}
	}
	a.starts = uniq
	n := len(a.starts)
	ends := make([]int, n)
	succs := make([][]int, n)
	liveIn := make([]map[machine.Reg]bool, n)
	a.liveOut = make([]map[machine.Reg]bool, n)
	for i := range a.starts {
		if i+1 < n {
			ends[i] = a.starts[i+1]
		} else {
			ends[i] = len(code)
		}
		liveIn[i] = map[machine.Reg]bool{}
		a.liveOut[i] = map[machine.Reg]bool{}
		if a.starts[i] < len(code) && code[a.starts[i]].Op == machine.Label {
			labelBlock[code[a.starts[i]].Imm] = i
		}
	}
	for i := range a.starts {
		if a.starts[i] >= ends[i] {
			continue
		}
		last := code[ends[i]-1]
		switch last.Op {
		case machine.Jmp:
			if t, ok := labelBlock[last.Imm]; ok {
				succs[i] = append(succs[i], t)
			}
		case machine.Bz, machine.Bnz:
			if t, ok := labelBlock[last.Imm]; ok {
				succs[i] = append(succs[i], t)
			}
			if i+1 < n {
				succs[i] = append(succs[i], i+1)
			}
		case machine.Ret:
		default:
			if i+1 < n {
				succs[i] = append(succs[i], i+1)
			}
		}
	}
	var buf []machine.Reg
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			out := map[machine.Reg]bool{}
			for _, s := range succs[i] {
				for r := range liveIn[s] {
					out[r] = true
				}
			}
			in := map[machine.Reg]bool{}
			for r := range out {
				in[r] = true
			}
			for j := ends[i] - 1; j >= a.starts[i]; j-- {
				if d := machine.Def(code[j]); d != machine.NoReg {
					delete(in, d)
				}
				buf = buf[:0]
				for _, u := range machine.Uses(code[j], buf) {
					in[u] = true
				}
			}
			if !sameSet(in, liveIn[i]) || !sameSet(out, a.liveOut[i]) {
				changed = true
			}
			liveIn[i], a.liveOut[i] = in, out
		}
	}
	return a
}

func sameSet(x, y map[machine.Reg]bool) bool {
	if len(x) != len(y) {
		return false
	}
	for r := range x {
		if !y[r] {
			return false
		}
	}
	return true
}

// blockOf returns the index of the block containing pos.
func (a *analysis) blockOf(pos int) int {
	b := 0
	for i, s := range a.starts {
		if s <= pos {
			b = i
		} else {
			break
		}
	}
	return b
}

// blockEnd returns the end (exclusive) of the block containing pos.
func (a *analysis) blockEnd(pos int) int {
	b := a.blockOf(pos)
	if b+1 < len(a.starts) {
		return a.starts[b+1]
	}
	return len(a.code)
}

// deadAfter reports whether r has no possible use after position pos
// (exclusive) before being redefined.
func (a *analysis) deadAfter(pos int, r machine.Reg) bool {
	end := a.blockEnd(pos)
	var buf []machine.Reg
	for j := pos + 1; j < end; j++ {
		buf = buf[:0]
		for _, u := range machine.Uses(a.code[j], buf) {
			if u == r {
				return false
			}
		}
		if machine.Def(a.code[j]) == r {
			return true
		}
	}
	return !a.liveOut[a.blockOf(pos)][r]
}

func remove(code []machine.Instr, i int) []machine.Instr {
	out := make([]machine.Instr, 0, len(code)-1)
	out = append(out, code[:i]...)
	out = append(out, code[i+1:]...)
	return out
}

// fuseAddLoad implements pattern 1, looking through an intervening
// KeepLive (which is empty and stays).
func fuseAddLoad(code []machine.Instr, a *analysis) (bool, []machine.Instr) {
	var buf []machine.Reg
	for i, add := range code {
		if add.Op != machine.Add || add.Rd == machine.NoReg {
			continue
		}
		z := add.Rd
		if !add.HasImm && (z == add.Rs1 || z == add.Rs2) {
			continue // sources must survive to the fused load
		}
		if add.HasImm && z == add.Rs1 {
			continue
		}
		end := a.blockEnd(i)
		klIdx := -1
		for j := i + 1; j < end; j++ {
			u := code[j]
			// operands must not change before the use of z
			d := machine.Def(u)
			usesZ := false
			buf = buf[:0]
			for _, r := range machine.Uses(u, buf) {
				if r == z {
					usesZ = true
				}
			}
			if usesZ {
				switch {
				case u.Op == machine.KeepLive && u.Rs1 == z && u.Rd == z && klIdx < 0:
					// the empty asm pinning z; keep scanning for the load
					klIdx = j
					continue
				case (u.Op.IsLoad() || u.Op.IsStore()) && u.Rs1 == z && u.HasImm && u.Imm == 0 &&
					(u.Op.IsStore() || u.Rd != z):
					if !a.deadAfter(j, z) {
						break
					}
					// fold the add into the addressing mode
					code[j].Rs1 = add.Rs1
					if add.HasImm {
						code[j].Imm = add.Imm
					} else {
						code[j].HasImm = false
						code[j].Rs2 = add.Rs2
					}
					// keep the KeepLive's base-liveness effect, now pinned
					// to the loaded value
					if klIdx >= 0 {
						kl := code[klIdx]
						tgt := code[j].Rd
						if code[j].Op.IsStore() {
							tgt = code[j].Rs1
						}
						code[klIdx] = machine.Instr{
							Op: machine.KeepLive, Rd: tgt, Rs1: tgt, Rs2: kl.Rs2,
							Comment: kl.Comment,
						}
						// it must follow the memory op to pin the new value:
						// move it if it currently precedes
						if klIdx < j {
							klInstr := code[klIdx]
							copy(code[klIdx:j], code[klIdx+1:j+1])
							code[j] = klInstr
						}
					}
					return true, remove(code, i)
				}
				break
			}
			if d == z || d == add.Rs1 || (!add.HasImm && d == add.Rs2) {
				break
			}
			if u.Op == machine.Call || u.Op == machine.CallR {
				break
			}
		}
	}
	return false, code
}

// forwardCopy implements pattern 2: a register copy whose target can be
// replaced by its source until either is redefined.
func forwardCopy(code []machine.Instr, a *analysis) (bool, []machine.Instr) {
	for i, mv := range code {
		if mv.Op != machine.Mov || mv.HasImm || mv.Rd == mv.Rs1 {
			continue
		}
		z, x := mv.Rd, mv.Rs1
		end := a.blockEnd(i)
		replaced := false
		ok := true
		j := i + 1
		for ; j < end; j++ {
			u := &code[j]
			// replace uses of z by x
			usesZ := instrUses(*u, z)
			if usesZ {
				replaceUses(u, z, x)
				replaced = true
			}
			d := machine.Def(*u)
			if d == x {
				// source changes: z must be dead from here on
				if !a.deadAfter(j, z) {
					ok = false
				}
				break
			}
			if d == z {
				break
			}
		}
		if j == end && a.liveOut[a.blockOf(i)][z] {
			ok = false // z escapes the block; cannot delete the copy
		}
		if ok && replaced {
			return true, remove(code, i)
		}
		if replaced && !ok {
			// roll back is awkward; instead accept the propagation and keep
			// the mov (still correct: uses were replaced by an equal value)
			return true, code
		}
	}
	return false, code
}

func instrUses(in machine.Instr, r machine.Reg) bool {
	var buf []machine.Reg
	for _, u := range machine.Uses(in, buf) {
		if u == r {
			return true
		}
	}
	return false
}

// replaceUses substitutes register x for uses of z in one instruction.
func replaceUses(in *machine.Instr, z, x machine.Reg) {
	rep := func(r machine.Reg) machine.Reg {
		if r == z {
			return x
		}
		return r
	}
	switch {
	case in.Op.IsArith():
		in.Rs1 = rep(in.Rs1)
		if !in.HasImm {
			in.Rs2 = rep(in.Rs2)
		}
	case in.Op == machine.Mov && !in.HasImm:
		in.Rs1 = rep(in.Rs1)
	case in.Op.IsLoad():
		in.Rs1 = rep(in.Rs1)
		if !in.HasImm {
			in.Rs2 = rep(in.Rs2)
		}
	case in.Op.IsStore():
		in.Rd = rep(in.Rd)
		in.Rs1 = rep(in.Rs1)
		if !in.HasImm {
			in.Rs2 = rep(in.Rs2)
		}
	case in.Op == machine.StSP || in.Op == machine.Arg:
		in.Rd = rep(in.Rd)
	case in.Op == machine.Bz || in.Op == machine.Bnz || in.Op == machine.CallR:
		in.Rs1 = rep(in.Rs1)
	case in.Op == machine.Ret:
		in.Rs1 = rep(in.Rs1)
	case in.Op == machine.KeepLive:
		in.Rs1 = rep(in.Rs1)
		in.Rs2 = rep(in.Rs2)
	}
}

// retargetAdd implements pattern 3: `add x,y,z; ...; mov w,z` with z
// otherwise unused becomes `add x,y,w`.
func retargetAdd(code []machine.Instr, a *analysis) (bool, []machine.Instr) {
	for i, add := range code {
		if add.Op != machine.Add || add.Rd == machine.NoReg {
			continue
		}
		z := add.Rd
		end := a.blockEnd(i)
		for j := i + 1; j < end; j++ {
			u := code[j]
			if instrUses(u, z) {
				if u.Op == machine.Mov && !u.HasImm && u.Rs1 == z && u.Rd != z {
					w := u.Rd
					// w must be unused in between, z dead after the mov
					if a.deadAfter(j, z) && !usedBetween(code, i+1, j, w) &&
						w != add.Rs1 && (add.HasImm || w != add.Rs2) {
						code[i].Rd = w
						return true, remove(code, j)
					}
				}
				break
			}
			d := machine.Def(u)
			if d == z || d == add.Rs1 || (!add.HasImm && d == add.Rs2) {
				break
			}
		}
	}
	return false, code
}

// usedBetween reports whether r is used or defined in code[lo:hi].
func usedBetween(code []machine.Instr, lo, hi int, r machine.Reg) bool {
	for j := lo; j < hi; j++ {
		if instrUses(code[j], r) || machine.Def(code[j]) == r {
			return true
		}
	}
	return false
}
