package peephole

import (
	"strings"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
)

func compileSafe(t *testing.T, src string, cfg machine.Config) *machine.Program {
	t.Helper()
	file, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gcsafe.Annotate(file, gcsafe.Options{}); err != nil {
		t.Fatal(err)
	}
	prog, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestAnalysisExampleFusion reproduces the paper's Analysis section: for
//
//	char f(char *x) { return x[1]; }
//
// the safe build emits `add %o0,1,%g2 ; <empty asm> ; ldsb [%g2],%o0`
// where the normal optimized code is the single `ldsb [%o0+1],%o0`. The
// postprocessor's pattern 1 folds the add back into the load.
func TestAnalysisExampleFusion(t *testing.T) {
	cfg := machine.SPARCstation10()
	prog := compileSafe(t, `char f(char *x) { return x[1]; }`, cfg)
	f := prog.Funcs["f"]

	var hasAdd, hasPlainLoad bool
	for _, in := range f.Code {
		if in.Op == machine.Add && in.HasImm && in.Imm == 1 {
			hasAdd = true
		}
		if in.Op == machine.LdB && in.HasImm && in.Imm == 1 {
			hasPlainLoad = true
		}
	}
	if !hasAdd || hasPlainLoad {
		t.Fatalf("safe build should have the separate add and no fused load:\n%s", listing(f))
	}

	st := Optimize(prog, cfg)
	if st.Fused == 0 {
		t.Fatalf("pattern 1 did not fire:\n%s", listing(prog.Funcs["f"]))
	}
	hasAdd, hasPlainLoad = false, false
	var keepliveSurvives bool
	for _, in := range prog.Funcs["f"].Code {
		if in.Op == machine.Add && in.HasImm && in.Imm == 1 {
			hasAdd = true
		}
		if in.Op == machine.LdB && in.HasImm && in.Imm == 1 {
			hasPlainLoad = true
		}
		if in.Op == machine.KeepLive {
			keepliveSurvives = true
		}
	}
	if hasAdd || !hasPlainLoad {
		t.Fatalf("postprocessed code should use the fused ldsb [x+1]:\n%s", listing(prog.Funcs["f"]))
	}
	if !keepliveSurvives {
		t.Fatal("the empty asm (and its base-liveness effect) must survive fusion")
	}
}

func listing(f *machine.Func) string {
	var sb strings.Builder
	for _, in := range f.Code {
		sb.WriteString(in.String() + "\n")
	}
	return sb.String()
}

// TestOutputsPreserved checks semantic preservation on a nontrivial
// program across all machine models.
func TestOutputsPreserved(t *testing.T) {
	src := `
struct node { int v; struct node *next; };
int main() {
    struct node *head = 0;
    int i;
    for (i = 0; i < 200; i++) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->v = i * 3;
        n->next = head;
        head = n;
    }
    int s = 0;
    struct node *p;
    for (p = head; p; p = p->next) s += p->v;
    print_int(s);
    char *buf = (char *)GC_malloc(64);
    strcpy(buf, "-check-");
    print_str(buf + 1);
    return 0;
}
`
	for _, cfg := range machine.Configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			before := compileSafe(t, src, cfg)
			rb, err := interp.Run(before, interp.Options{Config: cfg, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			after := compileSafe(t, src, cfg)
			Optimize(after, cfg)
			ra, err := interp.Run(after, interp.Options{Config: cfg, Validate: true})
			if err != nil {
				t.Fatal(err)
			}
			if rb.Output != ra.Output {
				t.Fatalf("postprocessing changed output: %q vs %q", rb.Output, ra.Output)
			}
			if ra.Cycles > rb.Cycles {
				t.Fatalf("postprocessing made the program slower: %d -> %d", rb.Cycles, ra.Cycles)
			}
			if after.Size() > before.Size() {
				t.Fatalf("postprocessing grew the code: %d -> %d", before.Size(), after.Size())
			}
		})
	}
}

// TestSafetyPreservedUnderPostprocessing reruns the postprocessed safe
// code under the fully asynchronous collector: the paper's arguments (1)-(3)
// say the three patterns cannot invalidate KEEP_LIVE semantics.
func TestSafetyPreservedUnderPostprocessing(t *testing.T) {
	src := `
int main() {
    int i = getchar() + 2000;
    int k = getchar() + 1000;
    char *p = (char *)GC_malloc(2000);
    p[k] = 55;
    print_int(p[i - 1000]);
    return 0;
}
`
	cfg := machine.SPARCstation10()
	prog := compileSafe(t, src, cfg)
	Optimize(prog, cfg)
	res, err := interp.Run(prog, interp.Options{
		Config: cfg, Validate: true, GCEveryInstrs: 1, Input: "AA",
	})
	if err != nil {
		t.Fatalf("postprocessed safe code faulted under async GC: %v", err)
	}
	if res.Output != "55" {
		t.Fatalf("output = %q", res.Output)
	}
}

// TestKeepLiveBaseBlocksPattern exercises the paper's explicit constraint:
// "The transformation could not apply if z were originally mentioned as
// the second argument of a KEEP_LIVE" — the base operand counts as a use,
// so a register serving as a KEEP_LIVE base is not rewritten away.
func TestKeepLiveBaseBlocksPattern(t *testing.T) {
	cfg := machine.SPARCstation10()
	code := []machine.Instr{
		machine.RI(machine.Add, 0, 1, 4),              // z(r0) = r1 + 4
		{Op: machine.KeepLive, Rd: 2, Rs1: 2, Rs2: 0}, // ... r0 is a KL base
		machine.RI(machine.Ld, 3, 0, 0),               // ld r3, [r0+0]
		{Op: machine.Ret, Rs1: 3},                     //
	}
	f := &machine.Func{Name: "f", Code: code}
	prog := &machine.Program{Funcs: map[string]*machine.Func{"f": f}, Order: []string{"f"}}
	st := Optimize(prog, cfg)
	if st.Fused != 0 {
		t.Fatalf("pattern 1 fired although z is a KEEP_LIVE base:\n%s", listing(prog.Funcs["f"]))
	}
}

// TestCopyForwarding exercises pattern 2 on a hand-built block.
func TestCopyForwarding(t *testing.T) {
	cfg := machine.SPARCstation10()
	code := []machine.Instr{
		machine.RI(machine.Mov, 1, machine.NoReg, 7), // r1 = 7
		machine.RR(machine.Mov, 2, 1, machine.NoReg), // r2 = r1   (pattern 2 target)
		machine.RI(machine.Add, 3, 2, 1),             // r3 = r2 + 1
		{Op: machine.Ret, Rs1: 3},
	}
	f := &machine.Func{Name: "f", Code: code}
	prog := &machine.Program{Funcs: map[string]*machine.Func{"f": f}, Order: []string{"f"}}
	st := Optimize(prog, cfg)
	if st.CopiesGone == 0 {
		t.Fatalf("pattern 2 did not fire:\n%s", listing(f))
	}
	for _, in := range prog.Funcs["f"].Code {
		if in.Op == machine.Mov && !in.HasImm {
			t.Fatalf("register copy not removed:\n%s", listing(prog.Funcs["f"]))
		}
	}
}

// TestRetargetAdd exercises pattern 3 on a hand-built block.
func TestRetargetAdd(t *testing.T) {
	cfg := machine.SPARCstation10()
	code := []machine.Instr{
		machine.RR(machine.Add, 3, 1, 2),             // add r3 = r1 + r2
		machine.RI(machine.Xor, 4, 1, 0),             // unrelated
		machine.RR(machine.Mov, 5, 3, machine.NoReg), // r5 = r3 (single use of r3)
		{Op: machine.Ret, Rs1: 5},
	}
	f := &machine.Func{Name: "f", Code: code}
	prog := &machine.Program{Funcs: map[string]*machine.Func{"f": f}, Order: []string{"f"}}
	st := Optimize(prog, cfg)
	if st.Retargeted == 0 && st.CopiesGone == 0 {
		t.Fatalf("neither pattern 3 nor pattern 2 fired:\n%s", listing(prog.Funcs["f"]))
	}
	count := 0
	for _, in := range prog.Funcs["f"].Code {
		if in.Op == machine.Mov && !in.HasImm {
			count++
		}
	}
	if count != 0 {
		t.Fatalf("copy not eliminated:\n%s", listing(prog.Funcs["f"]))
	}
}

// TestNoFusionWithoutIndexedLoads checks that a machine without reg+reg
// addressing (LoadIndexed=false) suppresses pattern 1 for register adds.
func TestNoFusionWithoutIndexedLoads(t *testing.T) {
	cfg := machine.SPARCstation10()
	cfg.LoadIndexed = false
	code := []machine.Instr{
		machine.RR(machine.Add, 0, 1, 2),
		machine.RI(machine.Ld, 3, 0, 0),
		{Op: machine.Ret, Rs1: 3},
	}
	f := &machine.Func{Name: "f", Code: code}
	prog := &machine.Program{Funcs: map[string]*machine.Func{"f": f}, Order: []string{"f"}}
	st := Optimize(prog, cfg)
	if st.Fused != 0 {
		t.Fatal("pattern 1 fired on a machine without indexed loads")
	}
}

// TestLiveOutBlocksRemoval: a copy whose target is live out of the block
// must not be deleted.
func TestLiveOutBlocksRemoval(t *testing.T) {
	cfg := machine.SPARCstation10()
	code := []machine.Instr{
		machine.RI(machine.Mov, 1, machine.NoReg, 7),
		machine.RR(machine.Mov, 2, 1, machine.NoReg),
		machine.RI(machine.Add, 1, 2, 1), // redefines r1; r2 still needed below
		{Op: machine.Jmp, Imm: 0},
		{Op: machine.Label, Imm: 0},
		machine.RI(machine.Add, 3, 2, 5), // r2 used in the next block
		{Op: machine.Ret, Rs1: 3},
	}
	f := &machine.Func{Name: "f", Code: code}
	prog := &machine.Program{Funcs: map[string]*machine.Func{"f": f}, Order: []string{"f"}}
	Optimize(prog, cfg)
	// r2 must still be defined before its cross-block use.
	defined := false
	for _, in := range prog.Funcs["f"].Code {
		if machine.Def(in) == 2 {
			defined = true
		}
		if in.Op == machine.Add && in.Rs1 == 2 && in.Imm == 5 && !defined {
			t.Fatalf("use of r2 before any definition:\n%s", listing(prog.Funcs["f"]))
		}
	}
}
