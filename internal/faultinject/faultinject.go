// Package faultinject is a deterministic, seeded fault-injection framework
// for the gcsafety stack. Production code declares named fault points —
// "gc.alloc", "artifact.disk.read", "server.handler", ... — by calling
// Fire (or Set.Fire) at the site where a failure could occur. With no
// rules installed a fault point is inert: one nil check (package-level
// Fire adds a single atomic load), no allocation, no lock.
//
// A Set is a compiled collection of rules parsed from a spec string:
//
//	point=action[,p=0.5][,after=N][,times=N][,ms=N][,msg=text][;point=...]
//
// where action is one of
//
//	error   Fire returns an *InjectedError (the site fails)
//	panic   Fire panics (exercises recovery paths)
//	sleep   Fire sleeps ms milliseconds, then returns nil (latency)
//
// and the optional parameters are
//
//	p=F       probability per hit in [0,1] (default 1: every hit fires)
//	after=N   the first N hits never fire (default 0)
//	times=N   fire at most N times (default 0: unlimited)
//	ms=N      sleep duration for the sleep action (default 10, max 5000)
//	msg=text  error / panic message (default "injected fault")
//
// Firing is deterministic: whether hit number n of a point fires depends
// only on (seed, point name, n), never on wall-clock time or goroutine
// interleaving, so a chaos run at a fixed seed injects the same fault
// schedule every time. Per-point hit counters are atomic, so a Set is
// safe for concurrent use.
//
// Activation is explicit: install a Set globally (SetGlobal / FromEnv,
// which reads GCSAFETY_FAULTS and GCSAFETY_FAULT_SEED), or carry one in a
// context (WithContext / FromContext) for request-scoped injection — the
// gcsafed daemon builds per-request Sets from the X-Fault-Inject header.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Canonical fault-point names. The string is the identity: rules match
// points by exact name. See DESIGN.md "Failure taxonomy and fault points"
// for what each simulates.
const (
	// PointGCAlloc fails a heap allocation (simulated heap exhaustion /
	// allocator failure). Error action only.
	PointGCAlloc = "gc.alloc"
	// PointGCCollectForce, when it fires at an allocation, forces a full
	// collection even though no trigger was reached — a collection-schedule
	// perturbation (the "unlikely interleaving" generator). Any action
	// counts as firing; error is conventional.
	PointGCCollectForce = "gc.collect.force"
	// PointGCCollect fires at the start of every collection; use the sleep
	// action to simulate slow collections. Error actions are ignored here
	// (a collection cannot fail).
	PointGCCollect = "gc.collect"
	// PointInterpStep fires at the interpreter's context-poll stride;
	// error aborts the run with a machine fault.
	PointInterpStep = "interp.step"
	// PointDiskRead / PointDiskWrite fail artifact disk-tier I/O.
	PointDiskRead  = "artifact.disk.read"
	PointDiskWrite = "artifact.disk.write"
	// PointServerHandler fires at the top of every gcsafed endpoint
	// handler: error becomes a 500, panic exercises the recovery
	// middleware, sleep delays the response.
	PointServerHandler = "server.handler"
	// PointHeapdump fires at the start of every heap-snapshot capture
	// (internal/interp CaptureSnapshot): error fails the capture — the
	// run's own outcome is never affected, only the snapshot is lost.
	PointHeapdump = "heapdump.capture"
	// PointPeerGet / PointPeerPut fire before the corresponding
	// cache-peering RPC (internal/cluster): error severs the peer link for
	// that operation — the caller falls back down its ladder (local
	// compute for a get, a dropped best-effort replication for a put) —
	// and sleep simulates a slow peer.
	PointPeerGet = "cluster.peer.get"
	PointPeerPut = "cluster.peer.put"
	// PointPipeline* fire inside the corresponding compilation stage of
	// internal/pipeline, before the stage's real work: error fails the
	// build at exactly that stage boundary (never corrupting a cached
	// artifact — stage errors are not cached), sleep delays it. One point
	// per stage of the Lex → Parse → Typecheck → Liveness → Annotate →
	// Codegen → Optimize → Peephole graph (Liveness only runs for elided
	// treatments).
	PointPipelineLex       = "pipeline.lex"
	PointPipelineParse     = "pipeline.parse"
	PointPipelineTypecheck = "pipeline.typecheck"
	PointPipelineLiveness  = "pipeline.liveness"
	PointPipelineAnnotate  = "pipeline.annotate"
	PointPipelineCodegen   = "pipeline.codegen"
	PointPipelineOptimize  = "pipeline.optimize"
	PointPipelinePeephole  = "pipeline.peephole"
)

// Action is what a rule does when it fires.
type Action int

const (
	// ActError makes Fire return an *InjectedError.
	ActError Action = iota
	// ActPanic makes Fire panic.
	ActPanic
	// ActSleep makes Fire sleep, then return nil.
	ActSleep
)

func (a Action) String() string {
	switch a {
	case ActError:
		return "error"
	case ActPanic:
		return "panic"
	case ActSleep:
		return "sleep"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ErrInjected is the sentinel matched by errors.Is for every injected
// error, so callers can distinguish injected failures from organic ones.
var ErrInjected = errors.New("injected fault")

// MaxSleep bounds the sleep action: Parse rejects a larger ms value and
// NewSet clamps, so an injected latency can park a goroutine for a few
// seconds at most — never long enough to be a resource-exhaustion vector
// in its own right.
const MaxSleep = 5 * time.Second

// InjectedError is the error returned by a fired error-action rule.
type InjectedError struct {
	Point string
	Msg   string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("injected fault at %s: %s", e.Point, e.Msg)
}

// Is makes errors.Is(err, ErrInjected) true for injected errors.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Rule is one parsed injection rule.
type Rule struct {
	Point  string
	Action Action
	Prob   float64 // per-hit firing probability (1 = always)
	After  uint64  // hits to skip before the rule is eligible
	Times  uint64  // max firings (0 = unlimited)
	Sleep  time.Duration
	Msg    string
}

// rule is a Rule plus its runtime counters.
type rule struct {
	Rule
	hits  atomic.Uint64
	fired atomic.Uint64
}

// Set is a compiled, seeded collection of rules. The zero of *Set (nil)
// is valid and inert. After construction a Set is immutable apart from
// its atomic counters, so it is safe for concurrent use.
type Set struct {
	seed   uint64
	points map[string][]*rule
	spec   string
}

// NewSet compiles rules under a seed. It is the programmatic alternative
// to Parse.
func NewSet(seed uint64, rules ...Rule) *Set {
	s := &Set{seed: seed, points: map[string][]*rule{}}
	for _, r := range rules {
		if r.Prob <= 0 || r.Prob > 1 {
			r.Prob = 1
		}
		if r.Msg == "" {
			r.Msg = "injected fault"
		}
		if r.Action == ActSleep && r.Sleep <= 0 {
			r.Sleep = 10 * time.Millisecond
		}
		if r.Sleep > MaxSleep {
			r.Sleep = MaxSleep
		}
		s.points[r.Point] = append(s.points[r.Point], &rule{Rule: r})
	}
	return s
}

// Parse compiles a spec string (see the package comment for the grammar)
// under a seed. An empty spec yields a valid Set with no rules.
func Parse(spec string, seed uint64) (*Set, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, rest, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q: want point=action[,params]", clause)
		}
		parts := strings.Split(rest, ",")
		r := Rule{Point: strings.TrimSpace(point), Prob: 1}
		switch strings.TrimSpace(parts[0]) {
		case "error":
			r.Action = ActError
		case "panic":
			r.Action = ActPanic
		case "sleep":
			r.Action = ActSleep
		default:
			return nil, fmt.Errorf("faultinject: %q: unknown action %q (want error, panic or sleep)", clause, parts[0])
		}
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: %q: bad parameter %q", clause, p)
			}
			switch k {
			case "p":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return nil, fmt.Errorf("faultinject: %q: p=%q not a probability", clause, v)
				}
				r.Prob = f
			case "after":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: bad after=%q", clause, v)
				}
				r.After = n
			case "times":
				n, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faultinject: %q: bad times=%q", clause, v)
				}
				r.Times = n
			case "ms":
				n, err := strconv.ParseUint(v, 10, 32)
				if err != nil || time.Duration(n)*time.Millisecond > MaxSleep {
					return nil, fmt.Errorf("faultinject: %q: bad ms=%q (max %d)", clause, v, MaxSleep/time.Millisecond)
				}
				r.Sleep = time.Duration(n) * time.Millisecond
			case "msg":
				r.Msg = v
			default:
				return nil, fmt.Errorf("faultinject: %q: unknown parameter %q", clause, k)
			}
		}
		rules = append(rules, r)
	}
	s := NewSet(seed, rules...)
	s.spec = spec
	return s, nil
}

// Spec returns the spec string the Set was parsed from ("" for NewSet).
func (s *Set) Spec() string {
	if s == nil {
		return ""
	}
	return s.spec
}

// Seed returns the Set's seed.
func (s *Set) Seed() uint64 {
	if s == nil {
		return 0
	}
	return s.seed
}

// Fire evaluates the rules for point against this hit. It returns an
// *InjectedError when an error rule fires, panics when a panic rule
// fires, sleeps (then returns nil) when a sleep rule fires, and returns
// nil otherwise. A nil Set is inert.
func (s *Set) Fire(point string) error {
	return s.FireCtx(context.Background(), point)
}

// FireCtx is Fire with a context: a firing sleep rule waits on the
// context too, so a cancelled request is released from an injected
// latency immediately (FireCtx then returns ctx.Err()).
func (s *Set) FireCtx(ctx context.Context, point string) error {
	if s == nil {
		return nil
	}
	rules := s.points[point]
	if rules == nil {
		return nil
	}
	for _, r := range rules {
		n := r.hits.Add(1) - 1
		if n < r.After {
			continue
		}
		if r.Times > 0 && r.fired.Load() >= r.Times {
			continue
		}
		if r.Prob < 1 && !decide(s.seed, point, n, r.Prob) {
			continue
		}
		r.fired.Add(1)
		switch r.Action {
		case ActPanic:
			panic(fmt.Sprintf("injected panic at %s: %s", point, r.Msg))
		case ActSleep:
			if err := sleepCtx(ctx, r.Sleep); err != nil {
				return err
			}
		default:
			return &InjectedError{Point: point, Msg: r.Msg}
		}
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fired reports how many times any rule for point has fired (tests,
// metrics).
func (s *Set) Fired(point string) uint64 {
	if s == nil {
		return 0
	}
	var total uint64
	for _, r := range s.points[point] {
		total += r.fired.Load()
	}
	return total
}

// decide is the deterministic per-hit coin flip: a hash of (seed, point,
// hit index) mapped into [0,1) and compared against p. Concurrent hits
// race only for hit indices, so any given schedule of N hits fires the
// same multiset of decisions regardless of interleaving.
func decide(seed uint64, point string, n uint64, p float64) bool {
	h := seed ^ 0x9E3779B97F4A7C15
	for i := 0; i < len(point); i++ {
		h = (h ^ uint64(point[i])) * 0x100000001B3
	}
	h ^= n + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	// splitmix64 finalizer
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11)/float64(1<<53) < p
}

// global is the process-wide Set consulted by the package-level Fire.
var global atomic.Pointer[Set]

// SetGlobal installs (or with nil, removes) the process-wide Set.
func SetGlobal(s *Set) { global.Store(s) }

// Global returns the process-wide Set (nil when fault injection is off).
func Global() *Set { return global.Load() }

// Enabled reports whether a global Set is installed.
func Enabled() bool { return global.Load() != nil }

// Fire fires point against the global Set; inert (one atomic load) when
// no Set is installed.
func Fire(point string) error {
	s := global.Load()
	if s == nil {
		return nil
	}
	return s.Fire(point)
}

// EnvVar and EnvSeedVar are the environment knobs read by FromEnv.
const (
	EnvVar     = "GCSAFETY_FAULTS"
	EnvSeedVar = "GCSAFETY_FAULT_SEED"
)

// FromEnv parses GCSAFETY_FAULTS (spec) and GCSAFETY_FAULT_SEED (uint64,
// default 1) and installs the result globally. With GCSAFETY_FAULTS
// unset or empty it is a no-op. getenv is usually os.Getenv; it is a
// parameter for testability.
func FromEnv(getenv func(string) string) (*Set, error) {
	spec := getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	if v := getenv(EnvSeedVar); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad %s=%q", EnvSeedVar, v)
		}
		seed = n
	}
	s, err := Parse(spec, seed)
	if err != nil {
		return nil, err
	}
	SetGlobal(s)
	return s, nil
}

// ctxKey is the context key for request-scoped Sets.
type ctxKey struct{}

// WithContext returns a context carrying s.
func WithContext(ctx context.Context, s *Set) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the Set carried by ctx, or nil.
func FromContext(ctx context.Context) *Set {
	s, _ := ctx.Value(ctxKey{}).(*Set)
	return s
}

// For resolves the Set in effect for ctx: the request-scoped Set when
// one is attached, else the process-wide Set, else nil (inert). Sites
// reached only through a context — the artifact disk tier — fire on
// this so both activation paths cover them.
func For(ctx context.Context) *Set {
	if s := FromContext(ctx); s != nil {
		return s
	}
	return Global()
}
