package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilAndEmptySetsAreInert(t *testing.T) {
	var s *Set
	if err := s.Fire("gc.alloc"); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	empty, err := Parse("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Fire("gc.alloc"); err != nil {
		t.Fatalf("empty set fired: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"noequals",
		"p=explode",
		"x=error,p=2",
		"x=error,after=minus",
		"x=error,bogus=1",
		"x=error,p",
	}
	for _, spec := range bad {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestErrorActionAndSentinel(t *testing.T) {
	s, err := Parse("gc.alloc=error,msg=boom", 1)
	if err != nil {
		t.Fatal(err)
	}
	ferr := s.Fire("gc.alloc")
	if ferr == nil {
		t.Fatal("p=1 rule did not fire")
	}
	if !errors.Is(ferr, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", ferr)
	}
	var ie *InjectedError
	if !errors.As(ferr, &ie) || ie.Point != "gc.alloc" || ie.Msg != "boom" {
		t.Fatalf("unexpected error: %#v", ferr)
	}
	if err := s.Fire("other.point"); err != nil {
		t.Fatalf("unrelated point fired: %v", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	s, err := Parse("x=error,after=3,times=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 0; i < 10; i++ {
		if s.Fire("x") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired at hits %v, want [3 4]", fired)
	}
	if got := s.Fired("x"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestProbabilityIsDeterministicAndRoughlyCalibrated(t *testing.T) {
	run := func(seed uint64) []bool {
		s, err := Parse("x=error,p=0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 1000)
		for i := range out {
			out[i] = s.Fire("x") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	count := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identical seeds", i)
		}
		if a[i] {
			count++
		}
	}
	if count < 200 || count > 400 {
		t.Fatalf("p=0.3 fired %d/1000 times", count)
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPanicAction(t *testing.T) {
	s, err := Parse("x=panic,msg=kapow", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "kapow") {
			t.Fatalf("panic value %v", p)
		}
	}()
	_ = s.Fire("x")
}

func TestSleepAction(t *testing.T) {
	s, err := Parse("x=sleep,ms=30,times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Fire("x"); err != nil {
		t.Fatalf("sleep returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("slept only %v", d)
	}
}

func TestConcurrentFiringCountsEveryHit(t *testing.T) {
	s, err := Parse("x=error,p=0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, hits = 8, 250
	var wg sync.WaitGroup
	fired := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < hits; i++ {
				if s.Fire("x") != nil {
					fired[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	// The multiset of per-hit-index decisions is fixed by the seed; only
	// which goroutine observes each index varies.
	want := 0
	for n := uint64(0); n < goroutines*hits; n++ {
		if decide(7, "x", n, 0.5) {
			want++
		}
	}
	if total != want {
		t.Fatalf("total fired %d, want %d", total, want)
	}
}

func TestGlobalAndEnv(t *testing.T) {
	defer SetGlobal(nil)
	if Enabled() {
		t.Fatal("global set leaked in")
	}
	if err := Fire("x"); err != nil {
		t.Fatalf("inert global fired: %v", err)
	}
	env := map[string]string{EnvVar: "x=error", EnvSeedVar: "9"}
	s, err := FromEnv(func(k string) string { return env[k] })
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || !Enabled() || Global() != s || s.Seed() != 9 {
		t.Fatal("FromEnv did not install the set")
	}
	if Fire("x") == nil {
		t.Fatal("global rule did not fire")
	}
	SetGlobal(nil)
	if s, err := FromEnv(func(string) string { return "" }); s != nil || err != nil {
		t.Fatalf("empty env: %v, %v", s, err)
	}
	if _, err := FromEnv(func(k string) string {
		if k == EnvVar {
			return "x=error"
		}
		return "NaN"
	}); err == nil {
		t.Fatal("bad seed accepted")
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context carries a set")
	}
	s := NewSet(1, Rule{Point: "x", Action: ActError})
	ctx := WithContext(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("set not carried")
	}
}

func TestSleepIsCapped(t *testing.T) {
	// Parse rejects an ms beyond MaxSleep (a uint32 ms would otherwise
	// allow a ~49-day park).
	if _, err := Parse("x=sleep,ms=4294967295", 1); err == nil {
		t.Fatal("49-day sleep accepted")
	}
	if _, err := Parse("x=sleep,ms=5001", 1); err == nil {
		t.Fatal("ms just past the cap accepted")
	}
	if _, err := Parse("x=sleep,ms=5000", 1); err != nil {
		t.Fatalf("ms at the cap rejected: %v", err)
	}
	// NewSet clamps rather than erroring (programmatic construction).
	s := NewSet(1, Rule{Point: "x", Action: ActSleep, Sleep: time.Hour})
	if got := s.points["x"][0].Sleep; got != MaxSleep {
		t.Fatalf("NewSet sleep = %v, want clamped to %v", got, MaxSleep)
	}
}

func TestFireCtxCancelsSleep(t *testing.T) {
	s := NewSet(1, Rule{Point: "x", Action: ActSleep, Sleep: MaxSleep})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.FireCtx(ctx, "x") }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled sleep returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("injected sleep ignored context cancellation")
	}
}

func TestForPrefersContextOverGlobal(t *testing.T) {
	defer SetGlobal(nil)
	g, _ := Parse("x=error,msg=global", 1)
	SetGlobal(g)
	if For(context.Background()) != g {
		t.Fatal("For without a context set did not fall back to global")
	}
	r, _ := Parse("x=error,msg=request", 1)
	if For(WithContext(context.Background(), r)) != r {
		t.Fatal("For did not prefer the request-scoped set")
	}
	SetGlobal(nil)
	if For(context.Background()) != nil {
		t.Fatal("For invented a set")
	}
}
