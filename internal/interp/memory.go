package interp

import (
	"fmt"

	"gcsafety/internal/gc"
	"gcsafety/internal/machine"
)

// Simulated memory map:
//
//	0x00002000 .. : static data segment (GC roots, scanned)
//	0x10000000 .. : collected heap (internal/gc)
//	0x3ff00000 .. 0x40000000 : stack, grows down (GC roots, scanned)

func (m *Machine) inStatic(a uint32) bool {
	return a >= machine.DataBase && a < machine.DataBase+uint32(len(m.static))
}

func (m *Machine) inStack(a uint32) bool {
	return a >= machine.StackLimit && a < machine.StackTop
}

// validate runs the premature-reclamation detector on heap accesses.
func (m *Machine) validate(a uint32, size uint32) error {
	if !m.opts.Validate {
		return nil
	}
	return m.heap.ValidateAccess(a, size)
}

func (m *Machine) read32raw(a uint32) (uint32, error) {
	// The stack is checked first: frame traffic (locals, spills, arguments)
	// dominates the access mix of every workload.
	switch {
	case m.inStack(a):
		off := a - machine.StackLimit
		s := m.stack[off:]
		return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24, nil
	case m.inStatic(a):
		off := a - machine.DataBase
		if int(off)+4 > len(m.static) {
			return 0, fmt.Errorf("static read past segment at %#x", a)
		}
		s := m.static[off:]
		return uint32(s[0]) | uint32(s[1])<<8 | uint32(s[2])<<16 | uint32(s[3])<<24, nil
	case m.heap.Contains(a):
		return m.heap.ReadWord(a)
	}
	return 0, fmt.Errorf("read of unmapped address %#x", a)
}

func (m *Machine) read32(a uint32) (uint32, error) {
	if a%4 != 0 {
		return 0, fmt.Errorf("misaligned word read at %#x", a)
	}
	if m.heap.Contains(a) {
		if err := m.validate(a, 4); err != nil {
			return 0, err
		}
		return m.heap.ReadWord(a)
	}
	return m.read32raw(a)
}

func (m *Machine) write32(a, v uint32) error {
	if a%4 != 0 {
		return fmt.Errorf("misaligned word write at %#x", a)
	}
	switch {
	case m.inStack(a):
		off := a - machine.StackLimit
		m.stack[off] = byte(v)
		m.stack[off+1] = byte(v >> 8)
		m.stack[off+2] = byte(v >> 16)
		m.stack[off+3] = byte(v >> 24)
		return nil
	case m.inStatic(a):
		off := a - machine.DataBase
		if int(off)+4 > len(m.static) {
			return fmt.Errorf("static write past segment at %#x", a)
		}
		m.static[off] = byte(v)
		m.static[off+1] = byte(v >> 8)
		m.static[off+2] = byte(v >> 16)
		m.static[off+3] = byte(v >> 24)
		return nil
	case m.heap.Contains(a):
		if err := m.validate(a, 4); err != nil {
			return err
		}
		return m.heap.WriteWord(a, v)
	}
	return fmt.Errorf("write to unmapped address %#x", a)
}

func (m *Machine) read8(a uint32) (byte, error) {
	switch {
	case m.inStatic(a):
		return m.static[a-machine.DataBase], nil
	case m.inStack(a):
		return m.stack[a-machine.StackLimit], nil
	case m.heap.Contains(a):
		if err := m.validate(a, 1); err != nil {
			return 0, err
		}
		return m.heap.ReadByteAt(a)
	}
	return 0, fmt.Errorf("read of unmapped address %#x", a)
}

func (m *Machine) write8(a uint32, v byte) error {
	switch {
	case m.inStatic(a):
		m.static[a-machine.DataBase] = v
		return nil
	case m.inStack(a):
		m.stack[a-machine.StackLimit] = v
		return nil
	case m.heap.Contains(a):
		if err := m.validate(a, 1); err != nil {
			return err
		}
		return m.heap.WriteByteAt(a, v)
	}
	return fmt.Errorf("write to unmapped address %#x", a)
}

func (m *Machine) read16(a uint32) (uint16, error) {
	if a%2 != 0 {
		return 0, fmt.Errorf("misaligned halfword read at %#x", a)
	}
	lo, err := m.read8(a)
	if err != nil {
		return 0, err
	}
	hi, err := m.read8(a + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

func (m *Machine) write16(a uint32, v uint16) error {
	if a%2 != 0 {
		return fmt.Errorf("misaligned halfword write at %#x", a)
	}
	if err := m.write8(a, byte(v)); err != nil {
		return err
	}
	return m.write8(a+1, byte(v>>8))
}

// cstring reads a NUL-terminated string (bounded) for runtime helpers.
func (m *Machine) cstring(a uint32) (string, error) {
	var b []byte
	for i := 0; i < 1<<20; i++ {
		c, err := m.read8(a + uint32(i))
		if err != nil {
			return "", err
		}
		if c == 0 {
			return string(b), nil
		}
		b = append(b, c)
	}
	return "", fmt.Errorf("unterminated string at %#x", a)
}

var _ = gc.WordSize // documented relationship with the collector layout
