package interp

import (
	"errors"
	"strings"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gc"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
)

// hazardSrc is the paper's opening example, arranged so that the object's
// final reference is the subscript p[i - 1000] with a dynamic index. The
// optimizer replaces it by `p = p - 1000; ... p[i]` — and between those two
// instructions there may be "no recognizable pointer to the object
// referenced by p".
const hazardSrc = `
int main() {
    int i = getchar() + 2000;            /* dynamic: defeats constant folding */
    int k = getchar() + 1000;            /* read before the allocation so that */
    char *p = (char *)GC_malloc(2000);   /* p's live range crosses no call and */
    p[k] = 55;                           /* p stays purely in a register */
    print_int(p[i - 1000]);              /* final reference through p */
    return 0;
}
`

// buildHazard compiles hazardSrc under the given treatment.
func buildHazard(t *testing.T, annotate bool, mode gcsafe.Mode, optimize bool, cg codegen.Options) *machine.Program {
	t.Helper()
	file, err := parser.Parse("hazard.c", hazardSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if annotate {
		if _, err := gcsafe.Annotate(file, gcsafe.Options{Mode: mode}); err != nil {
			t.Fatalf("annotate: %v", err)
		}
	}
	if cg.Machine.Name == "" {
		cg.Machine = machine.SPARCstation10()
	}
	cg.Optimize = optimize
	prog, err := codegen.Compile(file, cg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// hazardExec runs with a fully asynchronous collector (a GC before every
// instruction) and the premature-reclamation detector armed.
func hazardExec(t *testing.T, prog *machine.Program) (*Result, error) {
	t.Helper()
	m := New(prog, Options{
		Config:        machine.SPARCstation10(),
		Validate:      true,
		GCEveryInstrs: 1,
		Input:         "AA", // i = 'A'+2000; index written = 'A'+1000 = i-1000
	})
	return m.Run()
}

func TestHazardUnsafeOptimizedCollectsPrematurely(t *testing.T) {
	prog := buildHazard(t, false, gcsafe.ModeSafe, true, codegen.Options{})
	res, err := hazardExec(t, prog)
	if err == nil {
		t.Fatalf("expected premature-reclamation fault; got output %q", res.Output)
	}
	var ge *gc.Error
	if !errors.As(err, &ge) {
		t.Fatalf("fault is not a heap access error: %v", err)
	}
	if !strings.Contains(err.Error(), "not inside any live object") {
		t.Fatalf("unexpected fault: %v", err)
	}
}

func TestHazardDisguiseVisibleInListing(t *testing.T) {
	// The compiled unsafe code must actually contain the disguising
	// sequence: an instruction that subtracts 1000 from the pointer.
	prog := buildHazard(t, false, gcsafe.ModeSafe, true, codegen.Options{})
	listing := prog.Funcs["main"].Code
	found := false
	for _, in := range listing {
		if in.Op == machine.Sub && in.HasImm && in.Imm == 1000 && in.Rd == in.Rs1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("disguising `p = p - 1000` not present:\n%s", prog.Listing())
	}
}

func TestHazardSafeAnnotationPreventsCollection(t *testing.T) {
	prog := buildHazard(t, true, gcsafe.ModeSafe, true, codegen.Options{})
	res, err := hazardExec(t, prog)
	if err != nil {
		t.Fatalf("annotated program faulted: %v", err)
	}
	if res.Output != "55" {
		t.Fatalf("output = %q, want 55", res.Output)
	}
	if res.GCStats.Collections == 0 {
		t.Fatal("the async collector never ran; the test proves nothing")
	}
}

func TestHazardCheckedModeAlsoSafe(t *testing.T) {
	// "the checking calls ensure GC-safety, though not in a
	// performance-optimal fashion"
	prog := buildHazard(t, true, gcsafe.ModeChecked, true, codegen.Options{})
	res, err := hazardExec(t, prog)
	if err != nil {
		t.Fatalf("checked program faulted: %v", err)
	}
	if res.Output != "55" {
		t.Fatalf("output = %q, want 55", res.Output)
	}
}

func TestHazardDebuggableCodeIsSafe(t *testing.T) {
	// "For most compilers, it is possible to guarantee GC-safety by
	// generating fully debuggable code."
	prog := buildHazard(t, false, gcsafe.ModeSafe, false, codegen.Options{})
	res, err := hazardExec(t, prog)
	if err != nil {
		t.Fatalf("-g program faulted: %v", err)
	}
	if res.Output != "55" {
		t.Fatalf("output = %q, want 55", res.Output)
	}
}

func TestHazardGoneWithoutReassociation(t *testing.T) {
	// Ablation: disabling the disguising transformation removes the hazard
	// even without annotations (matching the paper's observation that the
	// problem is "essentially never observed in practice").
	prog := buildHazard(t, false, gcsafe.ModeSafe, true,
		codegen.Options{DisableReassociation: true})
	res, err := hazardExec(t, prog)
	if err != nil {
		t.Fatalf("program faulted: %v", err)
	}
	if res.Output != "55" {
		t.Fatalf("output = %q, want 55", res.Output)
	}
}

func TestHazardSafeOnAllMachines(t *testing.T) {
	for _, cfg := range machine.Configs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			prog := buildHazard(t, true, gcsafe.ModeSafe, true, codegen.Options{Machine: cfg})
			m := New(prog, Options{
				Config: cfg, Validate: true, GCEveryInstrs: 1, Input: "AA",
			})
			res, err := m.Run()
			if err != nil {
				t.Fatalf("faulted: %v", err)
			}
			if res.Output != "55" {
				t.Fatalf("output = %q", res.Output)
			}
		})
	}
}

// TestSafeModeCostsMoreThanUnsafe verifies the fundamental trade: the
// annotated optimized program runs correctly but no faster than the
// unannotated one.
func TestSafeModeCostsMoreThanUnsafe(t *testing.T) {
	src := `
int sum(char *p, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}
int main() {
    char *p = (char *)GC_malloc(1000);
    int i;
    for (i = 0; i < 1000; i++) p[i] = 1;
    print_int(sum(p, 1000));
    return 0;
}
`
	run := func(annotate bool) *Result {
		file, err := parser.Parse("s.c", src)
		if err != nil {
			t.Fatal(err)
		}
		if annotate {
			if _, err := gcsafe.Annotate(file, gcsafe.Options{}); err != nil {
				t.Fatal(err)
			}
		}
		cfg := machine.SPARCstation10()
		prog, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(prog, Options{Config: cfg, Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(false)
	safe := run(true)
	if plain.Output != "1000" || safe.Output != "1000" {
		t.Fatalf("outputs: %q / %q", plain.Output, safe.Output)
	}
	if safe.Cycles < plain.Cycles {
		t.Fatalf("safe (%d cycles) cheaper than unsafe (%d)?", safe.Cycles, plain.Cycles)
	}
	over := float64(safe.Cycles-plain.Cycles) / float64(plain.Cycles) * 100
	t.Logf("safe-mode overhead: %.1f%% (%d -> %d cycles)", over, plain.Cycles, safe.Cycles)
	if over > 100 {
		t.Fatalf("safe-mode overhead implausibly high: %.1f%%", over)
	}
}
