package interp

import (
	"strings"
	"sync"
	"testing"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/machine"
)

// rootedListSrc builds an 8-node list reachable from a global, so the
// end-of-run snapshot has a static root path to live storage.
const rootedListSrc = `
struct node { int v; struct node *next; };
struct node *head;
int main() {
    int i;
    for (i = 0; i < 8; i++) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
    }
    return 0;
}
`

func TestHeapProfileSnapshotAtExit(t *testing.T) {
	prog := compileSrc(t, rootedListSrc)
	res, err := Run(prog, Options{Config: machine.SPARCstation10(), HeapProfile: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := res.Snapshot
	if snap == nil {
		t.Fatalf("no snapshot captured (SnapshotErr=%q)", res.SnapshotErr)
	}
	if snap.Trigger != heapdump.TriggerExit {
		t.Errorf("trigger = %q, want %q", snap.Trigger, heapdump.TriggerExit)
	}
	if len(snap.Objects) < 8 {
		t.Fatalf("snapshot has %d objects, want >= 8", len(snap.Objects))
	}
	if snap.Epoch != uint32(res.GCStats.EpochHighWater) {
		t.Errorf("snapshot epoch %d, want high-water %d", snap.Epoch, res.GCStats.EpochHighWater)
	}

	// The GC_malloc call site inside main must be recorded with a real
	// source line and attributed all eight allocations.
	var site *heapdump.Site
	for i := range snap.Sites {
		if snap.Sites[i].Kind == "malloc" && snap.Sites[i].Func == "main" {
			site = &snap.Sites[i]
		}
	}
	if site == nil {
		t.Fatalf("no malloc site in main recorded: %+v", snap.Sites)
	}
	if site.Line <= 0 || site.Allocs < 8 || site.Bytes == 0 {
		t.Errorf("site = %+v, want positive line and >= 8 allocs", site)
	}

	// The global keeps the list rooted: its head must be distance 1 from a
	// static root and retain the whole chain (checked against the oracle).
	a := heapdump.Analyze(snap)
	best, bestRet := -1, uint64(0)
	for i := range snap.Objects {
		if r := a.Dom.Retained[i]; r > bestRet {
			best, bestRet = i, r
		}
	}
	if best < 0 {
		t.Fatal("no object retains anything")
	}
	if want := a.Graph.BruteRetained(best); bestRet != want {
		t.Errorf("retained %d disagrees with brute force %d", bestRet, want)
	}
	if a.Roots.Dist[best] != 1 {
		t.Errorf("list head at root distance %d, want 1", a.Roots.Dist[best])
	}
	if p := a.PathString(best); !strings.Contains(p, "static@") {
		t.Errorf("path %q does not go through the static segment", p)
	}

	// Without HeapProfile there is no snapshot and no profile cost.
	res2, err := Run(compileSrc(t, rootedListSrc), Options{Config: machine.SPARCstation10()})
	if err != nil {
		t.Fatalf("unprofiled run: %v", err)
	}
	if res2.Snapshot != nil {
		t.Error("unprofiled run produced a snapshot")
	}
	if res2.Cycles != res.Cycles || res2.Instrs != res.Instrs {
		t.Errorf("profiling changed the cost model: %d/%d cycles vs %d/%d",
			res.Cycles, res.Instrs, res2.Cycles, res2.Instrs)
	}
}

// useAfterFreeSrc frees an object through GC_free and then loads from the
// stale pointer — the temporal checker's canonical violation.
const useAfterFreeSrc = `
int main() {
    int *p = (int *)GC_malloc(16);
    p[0] = 1;
    GC_free((void *)p);
    int *q = (int *)GC_malloc(16);
    q[0] = 2;
    return p[0];
}
`

func TestHeapProfileSnapshotOnViolation(t *testing.T) {
	prog := compileSrc(t, useAfterFreeSrc)
	res, err := Run(prog, Options{Config: machine.SPARCstation10(),
		Temporal: true, HeapProfile: true})
	if err == nil {
		t.Fatal("use-after-free ran without a temporal violation")
	}
	if res.Snapshot == nil {
		t.Fatalf("violation run captured no snapshot (SnapshotErr=%q)", res.SnapshotErr)
	}
	snap := res.Snapshot
	if snap.Trigger != heapdump.TriggerViolation {
		t.Errorf("trigger = %q, want %q", snap.Trigger, heapdump.TriggerViolation)
	}
	if snap.FaultAddr == 0 {
		t.Error("violation snapshot carries no faulting address")
	}
	if snap.Reason == "" || !strings.Contains(snap.Reason, "temporal") {
		t.Errorf("reason = %q, want the temporal checker's message", snap.Reason)
	}
	// The forensics renderer must say something definite about the address
	// — either the recycled object now there or that the storage is gone.
	a := heapdump.Analyze(snap)
	explain := a.ExplainAddr(snap.FaultAddr)
	if !strings.Contains(explain, "retained size") && !strings.Contains(explain, "not inside any live object") {
		t.Errorf("ExplainAddr = %q", explain)
	}
}

// churnSrc allocates tens of thousands of short-lived nodes so the run is
// long enough for another goroutine to snapshot it mid-flight.
const churnSrc = `
struct node { int v; struct node *next; };
int main() {
    struct node *head = 0;
    int i;
    for (i = 0; i < 60000; i++) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->v = i;
        n->next = head;
        head = n;
        if (i % 64 == 0) head = 0;
    }
    return 0;
}
`

// TestRequestSnapshotWhileMutatorRuns is the introspection race test: it
// runs under -race in make check, with several goroutines requesting
// snapshots while the interpreter goroutine allocates. Snapshots are
// served at the poll stride (mutator stopped), so no access may race.
func TestRequestSnapshotWhileMutatorRuns(t *testing.T) {
	prog := compileSrc(t, churnSrc)
	m := New(prog, Options{Config: machine.SPARCstation10(), HeapProfile: true})
	done := make(chan struct{})
	var (
		res    *Result
		runErr error
	)
	go func() {
		defer close(done)
		res, runErr = m.Run()
	}()

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				snap, err := m.RequestSnapshot()
				if err != nil {
					t.Errorf("RequestSnapshot: %v", err)
					return
				}
				if snap == nil || snap.Trigger != heapdump.TriggerRequest {
					t.Errorf("snapshot = %+v", snap)
					return
				}
				for j := 1; j < len(snap.Objects); j++ {
					if snap.Objects[j-1].Base >= snap.Objects[j].Base {
						t.Error("mid-run snapshot objects not sorted")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	if res.Snapshot == nil {
		t.Fatal("profiled run ended without an exit snapshot")
	}
	// Post-run requests self-serve on the caller's goroutine.
	snap, err := m.RequestSnapshot()
	if err != nil || snap == nil {
		t.Fatalf("post-run RequestSnapshot: snap=%v err=%v", snap, err)
	}
}

func TestSnapshotFaultInjection(t *testing.T) {
	faults, err := faultinject.Parse("heapdump.capture=error,msg=dump-lost", 1)
	if err != nil {
		t.Fatal(err)
	}
	prog := compileSrc(t, rootedListSrc)
	res, runErr := Run(prog, Options{Config: machine.SPARCstation10(),
		HeapProfile: true, Faults: faults})
	if runErr != nil {
		t.Fatalf("injected snapshot fault perturbed the run itself: %v", runErr)
	}
	if res.Snapshot != nil {
		t.Error("capture succeeded despite the injected fault")
	}
	if !strings.Contains(res.SnapshotErr, "dump-lost") {
		t.Errorf("SnapshotErr = %q, want the injected message", res.SnapshotErr)
	}
}
