package interp

import (
	"fmt"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/machine"
)

// call runs fn to completion (including nested calls) using an explicit
// frame stack, so a collection can fire between any two instructions.
//
// The loop is the interpreter's hottest code: the common opcodes (ALU,
// loads/stores, branches, call/ret) are dispatched inline here, with the
// program counter, code slice and per-function metadata (resolved branch
// targets and direct-call targets) held in locals for the duration of a
// frame activation; everything else falls back to step. Per-instruction
// bookkeeping is kept to the instruction budget check, a poll countdown
// (replacing the old modulo), one table-indexed cycle charge, and — only
// when the asynchronous regime is armed — the GC tick. The cycle and
// instruction accounting, the poll schedule and the collection schedule
// are bit-identical to the pre-fast-path interpreter: those numbers are
// the reproduction's data.
func (m *Machine) call(entry *machine.Func, retReg machine.Reg) error {
	stack := make([]frame, 1, 16)
	stack[0] = frame{fn: entry, pc: 0, savedSP: m.sp, retReg: retReg}
	var (
		maxInstrs = m.opts.MaxInstrs
		gcEvery   = m.opts.GCEveryInstrs
		faults    = m.opts.Faults
		costs     = &m.costs
		// tt is nil outside temporal mode; holding it in a local keeps the
		// per-instruction shadow-tag branch off a field load.
		tt = m.tt
		// pollCd counts down to the next context poll so the hot loop pays
		// one decrement instead of a modulo. It reproduces the schedule
		// "poll when instrs%ctxCheckInterval == 0" exactly.
		pollCd = m.instrs % ctxCheckInterval
	)
	if pollCd != 0 {
		pollCd = ctxCheckInterval - pollCd
	}
	for len(stack) > 0 && !m.exited {
		fr := &stack[len(stack)-1]
		fn := fr.fn
		code := fn.Code
		meta := fr.meta
		if meta == nil {
			meta = m.meta[fn]
			fr.meta = meta
		}
		pc := fr.pc
	frame:
		for {
			if pc >= len(code) {
				// fall off the end: return 0
				m.sp = fr.savedSP
				m.setReg(fr.retReg, 0)
				if tt != nil {
					tt.setTag(fr.retReg, 0)
				}
				stack = stack[:len(stack)-1]
				break frame
			}
			in := &code[pc]
			if m.instrs >= maxInstrs {
				fr.pc = pc
				return &FaultError{Fn: fn.Name, PC: pc,
					Err: fmt.Errorf("%w (%d)", ErrInstrLimit, maxInstrs)}
			}
			if pollCd == 0 {
				if err := m.ctx.Err(); err != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc, Err: err}
				}
				// Fault injection shares the poll stride so an inert run pays
				// nothing beyond the existing branch.
				if faults != nil {
					if err := faults.Fire(faultinject.PointInterpStep); err != nil {
						fr.pc = pc
						return &FaultError{Fn: fn.Name, PC: pc, Err: err}
					}
				}
				// Cross-goroutine snapshot requests are served here: the
				// poll stride is the interpreter's safe point (mutator
				// stopped).
				if m.snapPending.Load() != nil {
					m.serveSnapshot()
				}
				pollCd = ctxCheckInterval
			}
			pollCd--
			m.instrs++
			m.cycles += costs[in.Op]
			// Asynchronous collection regime: a GC may fire between any two
			// instructions.
			if gcEvery > 0 {
				m.sinceGC++
				if m.sinceGC >= gcEvery {
					m.sinceGC = 0
					m.heap.Collect()
				}
			}
			if tt != nil {
				if err := m.track(in); err != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc, Err: err}
				}
			}
			pc++
			switch in.Op {
			case machine.Add:
				m.setReg(in.Rd, m.reg(in.Rs1)+m.src2(in))
			case machine.Sub:
				m.setReg(in.Rd, m.reg(in.Rs1)-m.src2(in))
			case machine.Mov:
				m.setReg(in.Rd, m.src2first(in))
			case machine.Ld:
				v, e := m.read32(m.reg(in.Rs1) + m.src2(in))
				if e != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
				m.setReg(in.Rd, v)
			case machine.St:
				if e := m.write32(m.reg(in.Rs1)+m.src2(in), m.reg(in.Rd)); e != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
			case machine.LdSP:
				v, e := m.read32(m.sp + uint32(in.Imm))
				if e != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
				m.setReg(in.Rd, v)
			case machine.StSP, machine.Arg:
				if e := m.write32(m.sp+uint32(in.Imm), m.reg(in.Rd)); e != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
			case machine.LeaSP:
				m.setReg(in.Rd, m.sp+uint32(in.Imm))
			case machine.Jmp:
				pc = meta.targets[pc-1]
			case machine.Bz:
				if m.reg(in.Rs1) == 0 {
					pc = meta.targets[pc-1]
				}
			case machine.Bnz:
				if m.reg(in.Rs1) != 0 {
					pc = meta.targets[pc-1]
				}
			case machine.CmpEq:
				m.setReg(in.Rd, b2u(m.reg(in.Rs1) == m.src2(in)))
			case machine.CmpNe:
				m.setReg(in.Rd, b2u(m.reg(in.Rs1) != m.src2(in)))
			case machine.CmpLt:
				m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) < int32(m.src2(in))))
			case machine.CmpLe:
				m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) <= int32(m.src2(in))))
			case machine.CmpGt:
				m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) > int32(m.src2(in))))
			case machine.CmpGe:
				m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) >= int32(m.src2(in))))
			case machine.CmpLtu:
				m.setReg(in.Rd, b2u(m.reg(in.Rs1) < m.src2(in)))
			case machine.CmpLeu:
				m.setReg(in.Rd, b2u(m.reg(in.Rs1) <= m.src2(in)))
			case machine.CmpGtu:
				m.setReg(in.Rd, b2u(m.reg(in.Rs1) > m.src2(in)))
			case machine.CmpGeu:
				m.setReg(in.Rd, b2u(m.reg(in.Rs1) >= m.src2(in)))
			case machine.Nop, machine.Label:
			case machine.KeepLive:
				// The empty asm: value flows through unchanged; the base
				// operand is merely kept live by its presence here.
				m.setReg(in.Rd, m.reg(in.Rs1))
			case machine.AdjSP:
				ns := m.sp + uint32(in.Imm)
				if ns < m.stackLo || ns > m.stackHi {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc - 1,
						Err: fmt.Errorf("stack overflow (sp=%#x)", ns)}
				}
				m.sp = ns
			case machine.Ret:
				if in.Rs1 != machine.NoReg {
					m.pendingRet = m.reg(in.Rs1)
				} else {
					m.pendingRet = 0
				}
				m.sp = fr.savedSP
				m.setReg(fr.retReg, m.pendingRet)
				if tt != nil {
					tt.setTag(fr.retReg, tt.retTag)
				}
				stack = stack[:len(stack)-1]
				break frame
			case machine.Call:
				if callee := meta.callees[pc-1]; callee != nil {
					fr.pc = pc
					stack = append(stack, frame{fn: callee, pc: 0, savedSP: m.sp,
						retReg: in.Rd, meta: meta.calleeMeta[pc-1]})
					break frame
				}
				v, err := m.runtimeCall(fn.Name, in)
				if err != nil {
					fr.pc = pc
					return &FaultError{Fn: fn.Name, PC: pc - 1, Err: err}
				}
				m.setReg(in.Rd, v)
				if tt != nil {
					tt.setTag(in.Rd, tt.retTag)
				}
				if m.exited {
					fr.pc = pc
					break frame
				}
			default:
				fr.pc = pc
				ret, push, err := m.step(fr, in)
				if err != nil {
					return &FaultError{Fn: fn.Name, PC: pc - 1, Err: err}
				}
				if push != nil {
					stack = append(stack, *push)
					break frame
				}
				if ret {
					m.sp = fr.savedSP
					m.setReg(fr.retReg, m.pendingRet)
					if tt != nil {
						tt.setTag(fr.retReg, tt.retTag)
					}
					stack = stack[:len(stack)-1]
					break frame
				}
				if m.exited {
					break frame
				}
				pc = fr.pc // step may have redirected control flow
			}
		}
	}
	return nil
}

func (m *Machine) reg(r machine.Reg) uint32 {
	if r == machine.NoReg || int(r) >= len(m.regs) {
		return 0
	}
	return m.regs[r]
}

func (m *Machine) setReg(r machine.Reg, v uint32) {
	if r == machine.NoReg || int(r) >= len(m.regs) {
		return
	}
	m.regs[r] = v
}

// src2 resolves the second operand (register or immediate).
func (m *Machine) src2(in *machine.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return m.reg(in.Rs2)
}

// step executes one cold-path instruction (anything the hot loop in call
// does not dispatch inline). It returns ret=true when the current frame
// finished, or a new frame to push for calls.
func (m *Machine) step(fr *frame, in *machine.Instr) (ret bool, push *frame, err error) {
	switch in.Op {
	case machine.Nop, machine.Label:
	case machine.KeepLive:
		// The empty asm: value flows through unchanged; the base operand is
		// merely kept live by its presence here.
		m.setReg(in.Rd, m.reg(in.Rs1))
	case machine.Mov:
		m.setReg(in.Rd, m.src2first(in))
	case machine.Add:
		m.setReg(in.Rd, m.reg(in.Rs1)+m.src2(in))
	case machine.Sub:
		m.setReg(in.Rd, m.reg(in.Rs1)-m.src2(in))
	case machine.Mul:
		m.setReg(in.Rd, m.reg(in.Rs1)*m.src2(in))
	case machine.Div:
		d := int32(m.src2(in))
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, uint32(int32(m.reg(in.Rs1))/d))
	case machine.Divu:
		d := m.src2(in)
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, m.reg(in.Rs1)/d)
	case machine.Rem:
		d := int32(m.src2(in))
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, uint32(int32(m.reg(in.Rs1))%d))
	case machine.Remu:
		d := m.src2(in)
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, m.reg(in.Rs1)%d)
	case machine.And:
		m.setReg(in.Rd, m.reg(in.Rs1)&m.src2(in))
	case machine.Or:
		m.setReg(in.Rd, m.reg(in.Rs1)|m.src2(in))
	case machine.Xor:
		m.setReg(in.Rd, m.reg(in.Rs1)^m.src2(in))
	case machine.Shl:
		m.setReg(in.Rd, m.reg(in.Rs1)<<(m.src2(in)&31))
	case machine.Shr:
		m.setReg(in.Rd, uint32(int32(m.reg(in.Rs1))>>(m.src2(in)&31)))
	case machine.Shru:
		m.setReg(in.Rd, m.reg(in.Rs1)>>(m.src2(in)&31))
	case machine.CmpEq:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) == m.src2(in)))
	case machine.CmpNe:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) != m.src2(in)))
	case machine.CmpLt:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) < int32(m.src2(in))))
	case machine.CmpLe:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) <= int32(m.src2(in))))
	case machine.CmpGt:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) > int32(m.src2(in))))
	case machine.CmpGe:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) >= int32(m.src2(in))))
	case machine.CmpLtu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) < m.src2(in)))
	case machine.CmpLeu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) <= m.src2(in)))
	case machine.CmpGtu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) > m.src2(in)))
	case machine.CmpGeu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) >= m.src2(in)))
	case machine.Ld:
		v, e := m.read32(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, v)
	case machine.LdB:
		b, e := m.read8(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(int32(int8(b))))
	case machine.LdBu:
		b, e := m.read8(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(b))
	case machine.LdH:
		h, e := m.read16(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(int32(int16(h))))
	case machine.LdHu:
		h, e := m.read16(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(h))
	case machine.St:
		if e := m.write32(m.reg(in.Rs1)+m.src2(in), m.reg(in.Rd)); e != nil {
			return false, nil, e
		}
	case machine.StB:
		if e := m.write8(m.reg(in.Rs1)+m.src2(in), byte(m.reg(in.Rd))); e != nil {
			return false, nil, e
		}
	case machine.StH:
		if e := m.write16(m.reg(in.Rs1)+m.src2(in), uint16(m.reg(in.Rd))); e != nil {
			return false, nil, e
		}
	case machine.Jmp:
		fr.pc = m.labels[fr.fn.Name][in.Imm]
	case machine.Bz:
		if m.reg(in.Rs1) == 0 {
			fr.pc = m.labels[fr.fn.Name][in.Imm]
		}
	case machine.Bnz:
		if m.reg(in.Rs1) != 0 {
			fr.pc = m.labels[fr.fn.Name][in.Imm]
		}
	case machine.AdjSP:
		ns := m.sp + uint32(in.Imm)
		if ns < m.stackLo || ns > m.stackHi {
			return false, nil, fmt.Errorf("stack overflow (sp=%#x)", ns)
		}
		m.sp = ns
	case machine.LeaSP:
		m.setReg(in.Rd, m.sp+uint32(in.Imm))
	case machine.LdSP:
		v, e := m.read32(m.sp + uint32(in.Imm))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, v)
	case machine.StSP, machine.Arg:
		if e := m.write32(m.sp+uint32(in.Imm), m.reg(in.Rd)); e != nil {
			return false, nil, e
		}
	case machine.Call:
		return m.doCall(fr.fn.Name, in)
	case machine.CallR:
		id := int32(m.reg(in.Rs1))
		f, ok := m.byID[id]
		if !ok {
			return false, nil, fmt.Errorf("indirect call to invalid function id %d", id)
		}
		return false, &frame{fn: f, pc: 0, savedSP: m.sp, retReg: in.Rd}, nil
	case machine.Ret:
		if in.Rs1 != machine.NoReg {
			m.pendingRet = m.reg(in.Rs1)
		} else {
			m.pendingRet = 0
		}
		return true, nil, nil
	default:
		return false, nil, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return false, nil, nil
}

func (m *Machine) src2first(in *machine.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return m.reg(in.Rs1)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// doCall dispatches a direct call: user function or runtime builtin.
func (m *Machine) doCall(fnName string, in *machine.Instr) (bool, *frame, error) {
	rd := in.Rd
	if f, ok := m.prog.Funcs[in.Sym]; ok {
		return false, &frame{fn: f, pc: 0, savedSP: m.sp, retReg: rd}, nil
	}
	v, err := m.runtimeCall(fnName, in)
	if err != nil {
		return false, nil, err
	}
	m.setReg(rd, v)
	if m.tt != nil {
		m.tt.setTag(rd, m.tt.retTag)
	}
	return false, nil, nil
}
