package interp

import (
	"fmt"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/machine"
)

// call runs fn to completion (including nested calls) using an explicit
// frame stack, so a collection can fire between any two instructions.
func (m *Machine) call(entry *machine.Func, retReg machine.Reg) error {
	stack := []*frame{{fn: entry, pc: 0, savedSP: m.sp, retReg: retReg}}
	for len(stack) > 0 && !m.exited {
		fr := stack[len(stack)-1]
		if fr.pc >= len(fr.fn.Code) {
			// fall off the end: return 0
			m.sp = fr.savedSP
			m.setReg(fr.retReg, 0)
			stack = stack[:len(stack)-1]
			continue
		}
		in := fr.fn.Code[fr.pc]
		if m.instrs >= m.opts.MaxInstrs {
			return &FaultError{Fn: fr.fn.Name, PC: fr.pc,
				Err: fmt.Errorf("%w (%d)", ErrInstrLimit, m.opts.MaxInstrs)}
		}
		if m.instrs%ctxCheckInterval == 0 {
			if err := m.ctx.Err(); err != nil {
				return &FaultError{Fn: fr.fn.Name, PC: fr.pc, Err: err}
			}
			// Fault injection shares the poll stride so an inert run pays
			// nothing beyond the existing branch.
			if m.opts.Faults != nil {
				if err := m.opts.Faults.Fire(faultinject.PointInterpStep); err != nil {
					return &FaultError{Fn: fr.fn.Name, PC: fr.pc, Err: err}
				}
			}
		}
		m.instrs++
		m.cycles += m.cfg.CostOf(in.Op)
		// Asynchronous collection regime: a GC may fire between any two
		// instructions.
		if m.opts.GCEveryInstrs > 0 {
			m.sinceGC++
			if m.sinceGC >= m.opts.GCEveryInstrs {
				m.sinceGC = 0
				m.heap.Collect()
			}
		}
		fr.pc++
		ret, push, err := m.step(fr, in)
		if err != nil {
			return &FaultError{Fn: fr.fn.Name, PC: fr.pc - 1, Err: err}
		}
		if push != nil {
			stack = append(stack, push)
			continue
		}
		if ret {
			m.sp = fr.savedSP
			m.setReg(fr.retReg, m.pendingRet)
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

func (m *Machine) reg(r machine.Reg) uint32 {
	if r == machine.NoReg || int(r) >= len(m.regs) {
		return 0
	}
	return m.regs[r]
}

func (m *Machine) setReg(r machine.Reg, v uint32) {
	if r == machine.NoReg || int(r) >= len(m.regs) {
		return
	}
	m.regs[r] = v
}

// src2 resolves the second operand (register or immediate).
func (m *Machine) src2(in machine.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return m.reg(in.Rs2)
}

// step executes one instruction. It returns ret=true when the current
// frame finished, or a new frame to push for calls.
func (m *Machine) step(fr *frame, in machine.Instr) (ret bool, push *frame, err error) {
	switch in.Op {
	case machine.Nop, machine.Label:
	case machine.KeepLive:
		// The empty asm: value flows through unchanged; the base operand is
		// merely kept live by its presence here.
		m.setReg(in.Rd, m.reg(in.Rs1))
	case machine.Mov:
		m.setReg(in.Rd, m.src2first(in))
	case machine.Add:
		m.setReg(in.Rd, m.reg(in.Rs1)+m.src2(in))
	case machine.Sub:
		m.setReg(in.Rd, m.reg(in.Rs1)-m.src2(in))
	case machine.Mul:
		m.setReg(in.Rd, m.reg(in.Rs1)*m.src2(in))
	case machine.Div:
		d := int32(m.src2(in))
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, uint32(int32(m.reg(in.Rs1))/d))
	case machine.Divu:
		d := m.src2(in)
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, m.reg(in.Rs1)/d)
	case machine.Rem:
		d := int32(m.src2(in))
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, uint32(int32(m.reg(in.Rs1))%d))
	case machine.Remu:
		d := m.src2(in)
		if d == 0 {
			return false, nil, fmt.Errorf("division by zero")
		}
		m.setReg(in.Rd, m.reg(in.Rs1)%d)
	case machine.And:
		m.setReg(in.Rd, m.reg(in.Rs1)&m.src2(in))
	case machine.Or:
		m.setReg(in.Rd, m.reg(in.Rs1)|m.src2(in))
	case machine.Xor:
		m.setReg(in.Rd, m.reg(in.Rs1)^m.src2(in))
	case machine.Shl:
		m.setReg(in.Rd, m.reg(in.Rs1)<<(m.src2(in)&31))
	case machine.Shr:
		m.setReg(in.Rd, uint32(int32(m.reg(in.Rs1))>>(m.src2(in)&31)))
	case machine.Shru:
		m.setReg(in.Rd, m.reg(in.Rs1)>>(m.src2(in)&31))
	case machine.CmpEq:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) == m.src2(in)))
	case machine.CmpNe:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) != m.src2(in)))
	case machine.CmpLt:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) < int32(m.src2(in))))
	case machine.CmpLe:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) <= int32(m.src2(in))))
	case machine.CmpGt:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) > int32(m.src2(in))))
	case machine.CmpGe:
		m.setReg(in.Rd, b2u(int32(m.reg(in.Rs1)) >= int32(m.src2(in))))
	case machine.CmpLtu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) < m.src2(in)))
	case machine.CmpLeu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) <= m.src2(in)))
	case machine.CmpGtu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) > m.src2(in)))
	case machine.CmpGeu:
		m.setReg(in.Rd, b2u(m.reg(in.Rs1) >= m.src2(in)))
	case machine.Ld:
		v, e := m.read32(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, v)
	case machine.LdB:
		b, e := m.read8(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(int32(int8(b))))
	case machine.LdBu:
		b, e := m.read8(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(b))
	case machine.LdH:
		h, e := m.read16(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(int32(int16(h))))
	case machine.LdHu:
		h, e := m.read16(m.reg(in.Rs1) + m.src2(in))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, uint32(h))
	case machine.St:
		if e := m.write32(m.reg(in.Rs1)+m.src2(in), m.reg(in.Rd)); e != nil {
			return false, nil, e
		}
	case machine.StB:
		if e := m.write8(m.reg(in.Rs1)+m.src2(in), byte(m.reg(in.Rd))); e != nil {
			return false, nil, e
		}
	case machine.StH:
		if e := m.write16(m.reg(in.Rs1)+m.src2(in), uint16(m.reg(in.Rd))); e != nil {
			return false, nil, e
		}
	case machine.Jmp:
		fr.pc = m.labels[fr.fn.Name][in.Imm]
	case machine.Bz:
		if m.reg(in.Rs1) == 0 {
			fr.pc = m.labels[fr.fn.Name][in.Imm]
		}
	case machine.Bnz:
		if m.reg(in.Rs1) != 0 {
			fr.pc = m.labels[fr.fn.Name][in.Imm]
		}
	case machine.AdjSP:
		ns := m.sp + uint32(in.Imm)
		if ns < machine.StackLimit || ns > machine.StackTop {
			return false, nil, fmt.Errorf("stack overflow (sp=%#x)", ns)
		}
		m.sp = ns
	case machine.LeaSP:
		m.setReg(in.Rd, m.sp+uint32(in.Imm))
	case machine.LdSP:
		v, e := m.read32(m.sp + uint32(in.Imm))
		if e != nil {
			return false, nil, e
		}
		m.setReg(in.Rd, v)
	case machine.StSP, machine.Arg:
		if e := m.write32(m.sp+uint32(in.Imm), m.reg(in.Rd)); e != nil {
			return false, nil, e
		}
	case machine.Call:
		return m.doCall(in.Sym, in.Rd, int(in.Imm))
	case machine.CallR:
		id := int32(m.reg(in.Rs1))
		f, ok := m.byID[id]
		if !ok {
			return false, nil, fmt.Errorf("indirect call to invalid function id %d", id)
		}
		return false, &frame{fn: f, pc: 0, savedSP: m.sp, retReg: in.Rd}, nil
	case machine.Ret:
		if in.Rs1 != machine.NoReg {
			m.pendingRet = m.reg(in.Rs1)
		} else {
			m.pendingRet = 0
		}
		return true, nil, nil
	default:
		return false, nil, fmt.Errorf("unimplemented opcode %v", in.Op)
	}
	return false, nil, nil
}

func (m *Machine) src2first(in machine.Instr) uint32 {
	if in.HasImm {
		return uint32(in.Imm)
	}
	return m.reg(in.Rs1)
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// doCall dispatches a direct call: user function or runtime builtin.
func (m *Machine) doCall(sym string, rd machine.Reg, nargs int) (bool, *frame, error) {
	if f, ok := m.prog.Funcs[sym]; ok {
		return false, &frame{fn: f, pc: 0, savedSP: m.sp, retReg: rd}, nil
	}
	v, err := m.runtimeCall(sym, nargs)
	if err != nil {
		return false, nil, err
	}
	m.setReg(rd, v)
	return false, nil, nil
}
