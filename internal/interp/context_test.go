package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/machine"
)

// infiniteLoop never terminates on its own: only the context or the
// instruction budget can stop it.
const infiniteLoop = `
int main() {
    int i = 0;
    while (1) { i = i + 1; }
    return i;
}
`

func compileSrc(t *testing.T, src string) *machine.Program {
	t.Helper()
	file, err := parser.Parse("ctx.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: machine.SPARCstation10()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func TestRunContextCancel(t *testing.T) {
	prog := compileSrc(t, infiniteLoop)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, prog, Options{Config: machine.SPARCstation10()})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop the run")
	}
}

func TestRunContextDeadline(t *testing.T) {
	prog := compileSrc(t, infiniteLoop)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := RunContext(ctx, prog, Options{Config: machine.SPARCstation10()})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline overshot by %v", elapsed)
	}
}

func TestRunContextAlreadyCanceled(t *testing.T) {
	prog := compileSrc(t, `int main() { return 0; }`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, prog, Options{Config: machine.SPARCstation10()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestInstrLimitSentinel(t *testing.T) {
	prog := compileSrc(t, infiniteLoop)
	res, err := RunContext(context.Background(), prog,
		Options{Config: machine.SPARCstation10(), MaxInstrs: 10_000})
	if !errors.Is(err, ErrInstrLimit) {
		t.Fatalf("err = %v, want ErrInstrLimit", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want a *FaultError carrying machine context", err)
	}
	if res == nil || res.Instrs != 10_000 {
		t.Fatalf("result = %+v, want Instrs == 10000", res)
	}
}

// TestRunContextCompletedRunUnaffected pins that a live context costs a
// terminating program nothing: same output, same cycle count as Run.
func TestRunContextCompletedRunUnaffected(t *testing.T) {
	prog := compileSrc(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 1000; i++) { s = s + i; }
    print_int(s);
    return 0;
}
`)
	plain, err := Run(prog, Options{Config: machine.SPARCstation10()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	under, err := RunContext(ctx, prog, Options{Config: machine.SPARCstation10()})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Output != under.Output || plain.Cycles != under.Cycles {
		t.Fatalf("context run diverged: %q/%d vs %q/%d",
			plain.Output, plain.Cycles, under.Output, under.Cycles)
	}
}
