package interp

import (
	"fmt"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
)

// The paper's Correctness section argues that in an annotated program
// "objects remain GC-accessible until the final access". These tests
// approximate a formalization: a battery of pointer-manipulating programs,
// each executed under collectors firing at several hostile cadences, with
// the premature-reclamation detector armed. The programs must produce the
// -g reference output in every treatment.

var safetyPrograms = []struct {
	name string
	src  string
	want string
}{
	{
		name: "list-splice",
		src: `
struct node { int v; struct node *next; };
struct node *mk(int v) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->v = v;
    n->next = 0;
    return n;
}
int main() {
    struct node *head = mk(0);
    struct node *tail = head;
    int i;
    for (i = 1; i < 40; i++) {
        tail->next = mk(i);
        tail = tail->next;
    }
    /* splice out every other node */
    struct node *p = head;
    while (p && p->next) {
        p->next = p->next->next;
        p = p->next;
    }
    int s = 0;
    for (p = head; p; p = p->next) s += p->v;
    print_int(s);
    return 0;
}
`,
		want: "380",
	},
	{
		name: "binary-tree",
		src: `
struct tree { int v; struct tree *l; struct tree *r; };
struct tree *insert(struct tree *t, int v) {
    if (t == 0) {
        struct tree *n = (struct tree *)GC_malloc(sizeof(struct tree));
        n->v = v;
        n->l = 0;
        n->r = 0;
        return n;
    }
    if (v < t->v) t->l = insert(t->l, v);
    else t->r = insert(t->r, v);
    return t;
}
int sum(struct tree *t) {
    if (t == 0) return 0;
    return t->v + sum(t->l) + sum(t->r);
}
int main() {
    struct tree *t = 0;
    int i;
    for (i = 0; i < 60; i++) t = insert(t, (i * 37) % 101);
    print_int(sum(t));
    return 0;
}
`,
		want: "2971",
	},
	{
		name: "string-walk",
		src: `
int main() {
    char *s = (char *)GC_malloc(26 + 1);
    char *p = s;
    char c;
    for (c = 'a'; c <= 'z'; c++) *p++ = c;
    *p = 0;
    int vowels = 0;
    for (p = s; *p; p++) {
        if (*p == 'a' || *p == 'e' || *p == 'i' || *p == 'o' || *p == 'u') vowels++;
    }
    print_int(vowels);
    print_int(strlen(s));
    return 0;
}
`,
		want: "526",
	},
	{
		name: "pointer-array-shuffle",
		src: `
int main() {
    char **slots = (char **)GC_malloc(16 * sizeof(char *));
    int i;
    for (i = 0; i < 16; i++) {
        char *obj = (char *)GC_malloc(32);
        obj[0] = 'A' + i;
        slots[i] = obj;
    }
    /* rotate the pointers; the old first object stays live via slots */
    for (i = 0; i < 160; i++) {
        char *first = slots[0];
        int j;
        for (j = 0; j < 15; j++) slots[j] = slots[j + 1];
        slots[15] = first;
        GC_malloc(48); /* garbage pressure */
    }
    for (i = 0; i < 16; i++) putchar(slots[i][0]);
    return 0;
}
`,
		want: "ABCDEFGHIJKLMNOP",
	},
	{
		name: "interior-pointer-in-heap",
		src: `
struct box { int pad; char *mid; };
int main() {
    struct box *b = (struct box *)GC_malloc(sizeof(struct box));
    char *obj = (char *)GC_malloc(100);
    obj[50] = 'Z';
    b->mid = obj + 50;           /* interior pointer stored in the heap */
    obj = 0;                     /* only the interior pointer remains */
    GC_gcollect();
    putchar(*(b->mid));
    return 0;
}
`,
		want: "Z",
	},
	{
		name: "realloc-growth",
		src: `
int main() {
    int *v = (int *)malloc(4 * sizeof(int));
    int n = 0;
    int cap = 4;
    int i;
    for (i = 0; i < 200; i++) {
        if (n == cap) {
            cap *= 2;
            v = (int *)realloc((void *)v, cap * sizeof(int));
        }
        v[n] = i;
        n++;
    }
    int s = 0;
    for (i = 0; i < n; i++) s += v[i];
    print_int(s);
    return 0;
}
`,
		want: "19900",
	},
}

func TestAnnotatedProgramsSafeUnderHostileGC(t *testing.T) {
	cfg := machine.SPARCstation10()
	for _, prog := range safetyPrograms {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			for _, cadence := range []uint64{1, 3, 17} {
				for _, post := range []bool{false, true} {
					file, err := parser.Parse(prog.name+".c", prog.src)
					if err != nil {
						t.Fatal(err)
					}
					if _, err := gcsafe.Annotate(file, gcsafe.Options{}); err != nil {
						t.Fatal(err)
					}
					compiled, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
					if err != nil {
						t.Fatal(err)
					}
					if post {
						peephole.Optimize(compiled, cfg)
					}
					res, err := Run(compiled, Options{
						Config: cfg, Validate: true, GCEveryInstrs: cadence,
					})
					label := fmt.Sprintf("cadence=%d post=%v", cadence, post)
					if err != nil {
						t.Fatalf("%s: faulted: %v", label, err)
					}
					if res.Output != prog.want {
						t.Fatalf("%s: output %q, want %q", label, res.Output, prog.want)
					}
				}
			}
		})
	}
}

// TestCheckedModeAcceptsLegalPrograms: the debugging configuration must not
// produce false positives on strictly conforming pointer arithmetic.
func TestCheckedModeAcceptsLegalPrograms(t *testing.T) {
	cfg := machine.SPARCstation10()
	for _, prog := range safetyPrograms {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			file, err := parser.Parse(prog.name+".c", prog.src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := gcsafe.Annotate(file, gcsafe.Options{Mode: gcsafe.ModeChecked}); err != nil {
				t.Fatal(err)
			}
			compiled, err := codegen.Compile(file, codegen.Options{Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(compiled, Options{Config: cfg, Validate: true})
			if err != nil {
				t.Fatalf("false positive: %v", err)
			}
			if res.Output != prog.want {
				t.Fatalf("output %q, want %q", res.Output, prog.want)
			}
		})
	}
}

// TestUnannotatedDebugAlsoSafe: the -g fallback must also survive the
// hostile regime (the paper's "fully debuggable code" guarantee).
func TestUnannotatedDebugAlsoSafe(t *testing.T) {
	cfg := machine.SPARCstation10()
	for _, prog := range safetyPrograms {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			file, err := parser.Parse(prog.name+".c", prog.src)
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := codegen.Compile(file, codegen.Options{Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(compiled, Options{Config: cfg, Validate: true, GCEveryInstrs: 1})
			if err != nil {
				t.Fatalf("faulted: %v", err)
			}
			if res.Output != prog.want {
				t.Fatalf("output %q, want %q", res.Output, prog.want)
			}
		})
	}
}

// TestCallSiteOnlyAnnotationSafeUnderCallSiteGC: programs annotated with
// the paper's optimization (4) are safe under the collector regime they
// were built for — collections at allocation/call sites only.
func TestCallSiteOnlyAnnotationSafeUnderCallSiteGC(t *testing.T) {
	cfg := machine.SPARCstation10()
	for _, prog := range safetyPrograms {
		prog := prog
		t.Run(prog.name, func(t *testing.T) {
			file, err := parser.Parse(prog.name+".c", prog.src)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := gcsafe.Annotate(file, gcsafe.Options{CallSiteOnly: true}); err != nil {
				t.Fatal(err)
			}
			compiled, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
			if err != nil {
				t.Fatal(err)
			}
			// Aggressive allocation-trigger, but no asynchronous firings.
			res, err := Run(compiled, Options{Config: cfg, Validate: true, TriggerBytes: 512})
			if err != nil {
				t.Fatalf("faulted: %v", err)
			}
			if res.Output != prog.want {
				t.Fatalf("output %q, want %q", res.Output, prog.want)
			}
		})
	}
}
