package interp

import (
	"fmt"

	"gcsafety/internal/machine"
)

// The native runtime library. These functions model the paper's
// unpreprocessed standard library ("the critical pieces are likely to be
// either hand assembly coded, or manually checked for GC-safety"): they
// execute natively, charging a nominal cycle cost, and are GC-safe by
// construction.

// Nominal runtime costs (cycles).
const (
	rtBase    = 8  // fixed dispatch/prologue cost of any runtime routine
	rtPerByte = 1  // per-byte cost of string/memory routines
	rtAlloc   = 40 // allocator fast-path cost
	rtCheck   = 12 // GC_same_obj page-tree lookup cost
)

func (m *Machine) arg(i int) (uint32, error) {
	return m.read32(m.sp + uint32(4*i))
}

// runtimeCall takes the Call instruction itself (plus the caller's name)
// rather than an unpacked symbol/arity so the allocation-site capture can
// live here, off the dispatch loop's critical path: by the time we are in
// this function a real call has already been paid for, so the m.prof
// nil-check below is noise, whereas the same check in the dispatch loop's
// Call case measurably perturbs the tuned interpreter throughput.
func (m *Machine) runtimeCall(fnName string, in *machine.Instr) (uint32, error) {
	if m.prof != nil {
		m.prof.pendFn, m.prof.pendLine = fnName, in.Line
	}
	sym, nargs := in.Sym, int(in.Imm)
	var args []uint32
	if nargs > len(m.argbuf) {
		args = make([]uint32, nargs)
	} else {
		args = m.argbuf[:nargs]
	}
	for i := range args {
		v, err := m.arg(i)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	a := func(i int) uint32 {
		if i < len(args) {
			return args[i]
		}
		return 0
	}
	m.cycles += rtBase
	if m.tt != nil {
		// Runtime results are untagged unless a case below says otherwise.
		m.tt.retTag = 0
	}
	switch sym {
	case "malloc", "GC_malloc":
		m.cycles += rtAlloc
		p, err := m.alloc(a(0))
		if err == nil && m.tt != nil {
			m.noteAlloc(p)
		}
		if err == nil && m.prof != nil {
			m.noteSite(p, "malloc")
		}
		return p, err
	case "calloc":
		m.cycles += rtAlloc
		p, err := m.alloc(a(0) * a(1))
		if err == nil && m.tt != nil {
			m.noteAlloc(p)
		}
		if err == nil && m.prof != nil {
			m.noteSite(p, "calloc")
		}
		return p, err
	case "realloc":
		m.cycles += rtAlloc
		p, err := m.realloc(a(0), a(1))
		if err == nil && m.tt != nil {
			m.noteAlloc(p)
		}
		if err == nil && m.prof != nil {
			m.noteSite(p, "realloc")
		}
		return p, err
	case "free":
		// The paper's methodology: "remove all calls to free". Temporal
		// mode rewrites free to GC_free at annotation time instead.
		return 0, nil
	case "GC_free":
		// The temporal mode's real deallocator (see temporal.go).
		m.cycles += rtAlloc
		return m.gcFree(a(0))
	case "join_threads":
		// Blocks (by scheduler retry) until every sibling thread finished;
		// immediately returns 0 in single-thread mode.
		if m.threadsRemaining() {
			return 0, errJoinWait
		}
		return 0, nil
	case "GC_gcollect":
		m.heap.Collect()
		return 0, nil
	case "GC_base":
		m.cycles += rtCheck
		b := m.heap.Base(a(0))
		if m.tt != nil {
			m.tt.retTag = m.heap.EpochOf(b)
		}
		return b, nil
	case "GC_same_obj":
		m.cycles += rtCheck
		if m.tt != nil {
			if err := m.temporalSameObj(a(0), a(1)); err != nil {
				return 0, err
			}
			m.tt.retTag = m.argTag(0)
		}
		p, err := m.heap.SameObject(a(0), a(1))
		if err != nil {
			return 0, &CheckError{Err: err}
		}
		return p, nil
	case "GC_pre_incr":
		m.cycles += rtCheck + 4
		return m.gcIncr(a(0), int32(a(1)), false)
	case "GC_post_incr":
		m.cycles += rtCheck + 4
		return m.gcIncr(a(0), int32(a(1)), true)
	case "KEEP_LIVE":
		// The paper's portable fallback: "a call to an external function
		// whose implementation is unavailable to the compiler for
		// analysis, but which actually just returns its first argument."
		if m.tt != nil {
			m.tt.retTag = m.argTag(0)
		}
		return a(0), nil
	case "strlen":
		s, err := m.cstring(a(0))
		if err != nil {
			return 0, err
		}
		m.cycles += uint64(len(s)) * rtPerByte
		return uint32(len(s)), nil
	case "strcpy":
		if m.tt != nil {
			m.tt.retTag = m.argTag(0)
		}
		return m.strcpy(a(0), a(1), 1<<30, true)
	case "strncpy":
		if m.tt != nil {
			m.tt.retTag = m.argTag(0)
		}
		return m.strcpy(a(0), a(1), a(2), true)
	case "strcat":
		s, err := m.cstring(a(0))
		if err != nil {
			return 0, err
		}
		m.cycles += uint64(len(s)) * rtPerByte
		if _, err := m.strcpy(a(0)+uint32(len(s)), a(1), 1<<30, true); err != nil {
			return 0, err
		}
		if m.tt != nil {
			m.tt.retTag = m.argTag(0)
		}
		return a(0), nil
	case "strcmp":
		return m.strcmp(a(0), a(1), 1<<30)
	case "strncmp":
		return m.strcmp(a(0), a(1), a(2))
	case "strchr":
		s, err := m.cstring(a(0))
		if err != nil {
			return 0, err
		}
		m.cycles += uint64(len(s)) * rtPerByte
		for i := 0; i <= len(s); i++ {
			var c byte
			if i < len(s) {
				c = s[i]
			}
			if c == byte(a(1)) {
				if m.tt != nil {
					m.tt.retTag = m.argTag(0)
				}
				return a(0) + uint32(i), nil
			}
		}
		return 0, nil
	case "memcpy", "memmove":
		if m.tt != nil {
			m.tt.retTag = m.argTag(0)
		}
		return m.memmove(a(0), a(1), a(2))
	case "memset":
		if m.tt != nil {
			m.tt.retTag = m.argTag(0)
		}
		m.cycles += uint64(a(2)) * rtPerByte
		for i := uint32(0); i < a(2); i++ {
			if err := m.write8(a(0)+i, byte(a(1))); err != nil {
				return 0, err
			}
		}
		return a(0), nil
	case "memcmp":
		m.cycles += uint64(a(2)) * rtPerByte
		for i := uint32(0); i < a(2); i++ {
			x, err := m.read8(a(0) + i)
			if err != nil {
				return 0, err
			}
			y, err := m.read8(a(1) + i)
			if err != nil {
				return 0, err
			}
			if x != y {
				if x < y {
					return uint32(0xFFFFFFFF), nil
				}
				return 1, nil
			}
		}
		return 0, nil
	case "putchar":
		m.out.WriteByte(byte(a(0)))
		return a(0), nil
	case "puts":
		s, err := m.cstring(a(0))
		if err != nil {
			return 0, err
		}
		m.out.WriteString(s)
		m.out.WriteByte('\n')
		return 0, nil
	case "print_str":
		s, err := m.cstring(a(0))
		if err != nil {
			return 0, err
		}
		m.out.WriteString(s)
		return 0, nil
	case "print_int":
		fmt.Fprintf(&m.out, "%d", int32(a(0)))
		return 0, nil
	case "getchar":
		if m.in >= len(m.opts.Input) {
			return uint32(0xFFFFFFFF), nil // EOF
		}
		c := m.opts.Input[m.in]
		m.in++
		return uint32(c), nil
	case "exit":
		m.exited = true
		m.exit = int32(a(0))
		return 0, nil
	case "abort":
		return 0, fmt.Errorf("abort() called")
	case "assert_true":
		if a(0) == 0 {
			return 0, fmt.Errorf("assertion failed")
		}
		return 0, nil
	case "rand_next":
		// xorshift32: deterministic workload driver
		x := m.rng
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		m.rng = x
		return x, nil
	}
	return 0, fmt.Errorf("call to undefined function %q", sym)
}

func (m *Machine) alloc(n uint32) (uint32, error) {
	a, err := m.heap.Alloc(n)
	if err != nil {
		return 0, err
	}
	return a, nil
}

func (m *Machine) realloc(p, n uint32) (uint32, error) {
	if p == 0 {
		return m.alloc(n)
	}
	na, err := m.alloc(n)
	if err != nil {
		return 0, err
	}
	old := m.heap.ObjectSize(m.heap.Base(p))
	cp := old
	if n < cp {
		cp = n
	}
	if _, err := m.memmove(na, p, cp); err != nil {
		return 0, err
	}
	return na, nil
}

func (m *Machine) gcIncr(slot uint32, delta int32, post bool) (uint32, error) {
	old, err := m.read32(slot)
	if err != nil {
		return 0, err
	}
	nw := uint32(int64(old) + int64(delta))
	if err := m.write32(slot, nw); err != nil {
		return 0, err
	}
	if m.tt != nil {
		// The pointer variable's stored tag survives the in-place update
		// and checks the moved pointer against its birth epoch.
		if tg := m.tt.memTag(slot); tg != 0 {
			if err := m.epochCheck(old, tg); err != nil {
				return 0, err
			}
		}
		m.tt.retTag = m.tt.memTag(slot)
	}
	if _, err := m.heap.SameObject(nw, old); err != nil {
		return 0, &CheckError{Err: err}
	}
	if post {
		return old, nil
	}
	return nw, nil
}

func (m *Machine) strcpy(dst, src, max uint32, nulTerm bool) (uint32, error) {
	var i uint32
	for i = 0; i < max; i++ {
		c, err := m.read8(src + i)
		if err != nil {
			return 0, err
		}
		if err := m.write8(dst+i, c); err != nil {
			return 0, err
		}
		m.cycles += rtPerByte
		if c == 0 {
			break
		}
	}
	return dst, nil
}

func (m *Machine) strcmp(p, q, max uint32) (uint32, error) {
	for i := uint32(0); i < max; i++ {
		x, err := m.read8(p + i)
		if err != nil {
			return 0, err
		}
		y, err := m.read8(q + i)
		if err != nil {
			return 0, err
		}
		m.cycles += rtPerByte
		if x != y {
			if x < y {
				return uint32(0xFFFFFFFF), nil
			}
			return 1, nil
		}
		if x == 0 {
			return 0, nil
		}
	}
	return 0, nil
}

func (m *Machine) memmove(dst, src, n uint32) (uint32, error) {
	m.cycles += uint64(n) * rtPerByte
	if dst < src {
		for i := uint32(0); i < n; i++ {
			c, err := m.read8(src + i)
			if err != nil {
				return 0, err
			}
			if err := m.write8(dst+i, c); err != nil {
				return 0, err
			}
		}
	} else {
		for i := n; i > 0; i-- {
			c, err := m.read8(src + i - 1)
			if err != nil {
				return 0, err
			}
			if err := m.write8(dst+i-1, c); err != nil {
				return 0, err
			}
		}
	}
	return dst, nil
}

var _ = machine.NoReg
