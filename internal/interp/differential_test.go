package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
)

// Differential testing: random linked-structure programs are generated as C
// source together with a Go-side reference model of their output. Every
// compilation treatment must produce exactly the model's output, and the
// annotated optimized build must additionally survive an asynchronous
// collector with the reclamation detector armed.

type progGen struct {
	r     *rand.Rand
	body  strings.Builder
	model [8][]int // the Go-side model of the 8 list slots
	out   strings.Builder
}

const diffHeader = `
struct node { int v; struct node *next; };
struct node *slots[8];

struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->v = v;
    n->next = rest;
    return n;
}

int listsum(struct node *l) {
    int s = 0;
    while (l) { s += l->v; l = l->next; }
    return s;
}

int listlen(struct node *l) {
    int n = 0;
    while (l) { n++; l = l->next; }
    return n;
}
`

func (g *progGen) step(i int) {
	slot := g.r.Intn(8)
	switch g.r.Intn(6) {
	case 0, 1: // push
		v := g.r.Intn(1000)
		fmt.Fprintf(&g.body, "    slots[%d] = cons(%d, slots[%d]);\n", slot, v, slot)
		g.model[slot] = append([]int{v}, g.model[slot]...)
	case 2: // pop
		fmt.Fprintf(&g.body, "    if (slots[%d]) slots[%d] = slots[%d]->next;\n", slot, slot, slot)
		if len(g.model[slot]) > 0 {
			g.model[slot] = g.model[slot][1:]
		}
	case 3: // sum
		fmt.Fprintf(&g.body, "    print_int(listsum(slots[%d])); print_str(\" \");\n", slot)
		s := 0
		for _, v := range g.model[slot] {
			s += v
		}
		fmt.Fprintf(&g.out, "%d ", s)
	case 4: // move a list between slots (aliasing)
		dst := g.r.Intn(8)
		fmt.Fprintf(&g.body, "    slots[%d] = slots[%d];\n", dst, slot)
		g.model[dst] = g.model[slot]
	case 5: // len + garbage pressure
		fmt.Fprintf(&g.body, "    print_int(listlen(slots[%d])); GC_malloc(%d);\n",
			slot, 16+g.r.Intn(200))
		fmt.Fprintf(&g.out, "%d", len(g.model[slot]))
	}
}

// generate builds one program and its expected output.
func generate(seed int64, steps int) (src, want string) {
	g := &progGen{r: rand.New(rand.NewSource(seed))}
	for i := 0; i < steps; i++ {
		g.step(i)
	}
	// final summary: sums of all slots
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&g.body, "    print_int(listsum(slots[%d])); print_str(\"|\");\n", i)
		s := 0
		for _, v := range g.model[i] {
			s += v
		}
		fmt.Fprintf(&g.out, "%d|", s)
	}
	src = diffHeader + "int main() {\n" + g.body.String() + "    return 0;\n}\n"
	return src, g.out.String()
}

func TestDifferentialRandomPrograms(t *testing.T) {
	cfg := machine.SPARCstation10()
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			src, want := generate(seed, 60)
			treatments := []struct {
				name     string
				annotate bool
				checked  bool
				optimize bool
				post     bool
				async    uint64
			}{
				{name: "-g"},
				{name: "-O", optimize: true},
				{name: "-O safe async", optimize: true, annotate: true, async: 13},
				{name: "-O safe post async", optimize: true, annotate: true, post: true, async: 13},
				{name: "-g checked", annotate: true, checked: true},
			}
			for _, tr := range treatments {
				file, err := parser.Parse("diff.c", src)
				if err != nil {
					t.Fatalf("%s: parse: %v\n%s", tr.name, err, src)
				}
				if tr.annotate {
					opts := gcsafe.Options{}
					if tr.checked {
						opts.Mode = gcsafe.ModeChecked
					}
					if _, err := gcsafe.Annotate(file, opts); err != nil {
						t.Fatalf("%s: annotate: %v", tr.name, err)
					}
				}
				prog, err := codegen.Compile(file, codegen.Options{Optimize: tr.optimize, Machine: cfg})
				if err != nil {
					t.Fatalf("%s: compile: %v", tr.name, err)
				}
				if tr.post {
					peephole.Optimize(prog, cfg)
				}
				res, err := Run(prog, Options{
					Config: cfg, Validate: true,
					GCEveryInstrs: tr.async,
					TriggerBytes:  8 << 10,
				})
				if err != nil {
					t.Fatalf("%s: faulted: %v", tr.name, err)
				}
				if res.Output != want {
					t.Fatalf("%s: output diverged from the model.\ngot:  %q\nwant: %q\nprogram:\n%s",
						tr.name, res.Output, want, src)
				}
			}
		})
	}
}
