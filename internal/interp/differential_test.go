package interp_test

import (
	"fmt"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
)

// Differential testing: random programs are generated as C source together
// with a Go-side reference model of their output, and every compilation
// treatment must produce exactly the model's output. The generator lives in
// internal/fuzz (shared with the fuzzing harness and cmd/fuzzcheck); this
// test drives the interpreter's own treatment combinations against it,
// including the annotated optimized build under an asynchronous collector
// with the reclamation detector armed.

func TestDifferentialRandomPrograms(t *testing.T) {
	cfg := machine.SPARCstation10()
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p := fuzz.Generate(seed, 60)
			src, want := p.Source, p.Want
			treatments := []struct {
				name     string
				annotate bool
				checked  bool
				optimize bool
				post     bool
				async    uint64
			}{
				{name: "-g"},
				{name: "-O", optimize: true},
				{name: "-O safe async", optimize: true, annotate: true, async: 13},
				{name: "-O safe post async", optimize: true, annotate: true, post: true, async: 13},
				{name: "-g checked", annotate: true, checked: true},
			}
			for _, tr := range treatments {
				file, err := parser.Parse("diff.c", src)
				if err != nil {
					t.Fatalf("%s: parse: %v\n%s", tr.name, err, src)
				}
				if tr.annotate {
					opts := gcsafe.Options{}
					if tr.checked {
						opts.Mode = gcsafe.ModeChecked
					}
					if _, err := gcsafe.Annotate(file, opts); err != nil {
						t.Fatalf("%s: annotate: %v", tr.name, err)
					}
				}
				prog, err := codegen.Compile(file, codegen.Options{Optimize: tr.optimize, Machine: cfg})
				if err != nil {
					t.Fatalf("%s: compile: %v", tr.name, err)
				}
				if tr.post {
					peephole.Optimize(prog, cfg)
				}
				res, err := interp.Run(prog, interp.Options{
					Config: cfg, Validate: true,
					GCEveryInstrs: tr.async,
					TriggerBytes:  8 << 10,
				})
				if err != nil {
					t.Fatalf("%s: faulted: %v", tr.name, err)
				}
				if res.Output != want {
					t.Fatalf("%s: output diverged from the model.\ngot:  %q\nwant: %q\nprogram:\n%s",
						tr.name, res.Output, want, src)
				}
			}
		})
	}
}

// The full treatment matrix, driven through the fuzz harness itself: a
// smoke-sized complement to internal/fuzz's own 2000-program run, kept here
// so the interpreter package exercises its adversarial scheduling hooks
// (Options.CollectAtEveryAlloc, GCEveryInstrs=1) in its own test suite.
func TestDifferentialMatrixSmoke(t *testing.T) {
	for seed := int64(100); seed < 104; seed++ {
		p := fuzz.Generate(seed, 8)
		m, err := fuzz.RunMatrix(p, fuzz.MatrixOptions{
			Machines: []machine.Config{machine.SPARCstation10()},
		})
		if err != nil {
			t.Fatalf("harness failure: %v", err)
		}
		if len(m.Violations) > 0 {
			t.Fatalf("matrix violation:\n%s", fuzz.Describe(p, m.Violations))
		}
	}
}
