package interp

import (
	"strings"
	"testing"

	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/machine"
)

// Runtime library behaviour, exercised through compiled C.

func TestRuntimeMemoryFunctions(t *testing.T) {
	runBoth(t, `
int main() {
    char *a = (char *)GC_malloc(32);
    char *b = (char *)GC_malloc(32);
    memset((void *)a, 'x', 8);
    a[8] = 0;
    print_int(strlen(a));
    memcpy((void *)b, (void *)a, 9);
    print_int(strcmp(a, b));
    print_int(memcmp((void *)a, (void *)b, 9));
    b[3] = 'y';
    print_int(memcmp((void *)a, (void *)b, 9) != 0);
    /* overlapping move */
    strcpy(a, "abcdef");
    memmove((void *)(a + 2), (void *)a, 4);
    print_str(a);
    return 0;
}
`, "8001ababcd")
}

func TestRuntimeStringFunctions(t *testing.T) {
	runBoth(t, `
int main() {
    char *s = (char *)GC_malloc(64);
    strncpy(s, "hello world", 5);
    s[5] = 0;
    print_str(s);
    print_int(strncmp("abcdef", "abcxyz", 3));
    print_int(strncmp("abcdef", "abcxyz", 4) < 0);
    print_int(strchr("hello", 'z') == 0);
    char *e = strchr("hello", 0);   /* points at the terminator */
    print_int(*e == 0);
    return 0;
}
`, "hello0111")
}

func TestRuntimeGCBase(t *testing.T) {
	runBoth(t, `
int main() {
    char *p = (char *)GC_malloc(100);
    char *mid = p + 57;
    print_int((char *)GC_base((void *)mid) == p);
    print_int(GC_base((void *)0) == 0);
    return 0;
}
`, "11")
}

func TestDivisionByZeroFault(t *testing.T) {
	src := `int main() { int z = 0; return 5 / z; }`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, true)
	_, err := Run(prog, Options{Config: cfgSS10()})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("err = %v", err)
	}
}

func TestStackOverflowFault(t *testing.T) {
	src := `
int deep(int n) {
    int pad[200];
    pad[0] = n;
    return deep(pad[0] + 1);
}
int main() { return deep(0); }
`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, false)
	_, err := Run(prog, Options{Config: cfgSS10(), MaxInstrs: 100_000_000})
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Fatalf("err = %v", err)
	}
}

func TestInstructionBudgetFault(t *testing.T) {
	src := `int main() { for (;;) {} return 0; }`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, true)
	_, err := Run(prog, Options{Config: cfgSS10(), MaxInstrs: 10_000})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestWildPointerFaults(t *testing.T) {
	src := `int main() { int *p = (int *)0x7778; return *p; }`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, false)
	_, err := Run(prog, Options{Config: cfgSS10()})
	if err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("err = %v", err)
	}
}

func TestBadIndirectCallFaults(t *testing.T) {
	src := `
int main() {
    int (*f)(int) = (int (*)(int))9999;
    return f(1);
}
`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, false)
	_, err := Run(prog, Options{Config: cfgSS10()})
	if err == nil || !strings.Contains(err.Error(), "invalid function id") {
		t.Fatalf("err = %v", err)
	}
}

func TestBaseOnlyHeapMode(t *testing.T) {
	// A program that stores only base pointers in the heap works in the
	// Extensions-section collector mode, even under heavy collection.
	src := `
struct node { int v; struct node *next; };
int main() {
    struct node *head = 0;
    int i;
    for (i = 0; i < 200; i++) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->v = i;
        n->next = head;   /* base pointer into the heap: allowed */
        head = n;
        GC_malloc(64);
    }
    int s = 0;
    for (; head; head = head->next) s += head->v;
    print_int(s);
    return 0;
}
`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, true)
	res, err := Run(prog, Options{
		Config: cfgSS10(), Validate: true, BaseOnlyHeap: true, TriggerBytes: 4 << 10,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Output != "19900" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.GCStats.Collections == 0 {
		t.Fatal("no collections; mode untested")
	}
}

// helpers

func mustParseSrc(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := parser.Parse("rt.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func mustCompile(t *testing.T, f *ast.File, optimize bool) *machine.Program {
	t.Helper()
	prog, err := codegen.Compile(f, codegen.Options{Optimize: optimize, Machine: cfgSS10()})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func cfgSS10() machine.Config { return machine.SPARCstation10() }

func TestMisalignedAccessFaults(t *testing.T) {
	src := `
int main() {
    char *p = (char *)GC_malloc(16);
    int *q = (int *)(p + 1);     /* misaligned */
    return *q;
}
`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, false)
	_, err := Run(prog, Options{Config: cfgSS10()})
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Fatalf("err = %v", err)
	}
}

func TestHalfwordAccess(t *testing.T) {
	runBoth(t, `
int main() {
    short *h = (short *)GC_malloc(8);
    h[0] = -5;
    h[1] = 300;
    unsigned short *u = (unsigned short *)h;
    print_int(h[0]);
    print_int(u[1]);
    print_int(h[0] + h[1]);
    return 0;
}
`, "-5300295")
}

func TestGlobalPointersAreRoots(t *testing.T) {
	// A heap object referenced only from the static data segment survives.
	src := `
char *keeper;
int main() {
    keeper = (char *)GC_malloc(64);
    keeper[0] = 'G';
    GC_gcollect();
    GC_malloc(1000);
    GC_gcollect();
    putchar(keeper[0]);
    return 0;
}
`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, true)
	res, err := Run(prog, Options{Config: cfgSS10(), Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "G" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestConservativeIntRetention(t *testing.T) {
	// An integer that happens to equal a heap address retains the object —
	// the defining property (and cost) of conservative collection.
	src := `
unsigned disguised;
int main() {
    char *p = (char *)GC_malloc(128);
    p[0] = 'R';
    disguised = (unsigned)p;   /* benign round trip, per the paper */
    p = 0;
    GC_gcollect();
    char *back = (char *)disguised;
    putchar(back[0]);
    return 0;
}
`
	file := mustParseSrc(t, src)
	prog := mustCompile(t, file, false)
	res, err := Run(prog, Options{Config: cfgSS10(), Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "R" {
		t.Fatalf("output = %q", res.Output)
	}
}
