// Package interp executes compiled programs on the simulated machine,
// linking them against the conservative collector and the native runtime
// library (the unpreprocessed "standard C library" of the paper's
// methodology). It provides:
//
//   - deterministic cycle accounting under a machine cost model, the
//     basis for every performance table in EXPERIMENTS.md;
//   - conservative root scanning of the register file, the stack and the
//     static data segment;
//   - two collection-trigger regimes: allocation-triggered only (the
//     paper's "collections triggered only at procedure calls" discussion)
//     and asynchronous (a collection may fire between any two
//     instructions), which is the regime the safety argument must survive;
//   - an optional access validator that detects loads and stores to
//     reclaimed heap objects — the harness's premature-collection detector
//     (never part of the cost model).
//
// Since the engine split, the machine state, runtime library, checkers and
// scheduler live in the engine-neutral internal/engine core; this package
// contributes the classic switch-dispatch loop (internal/interp/internal/
// dispatch) and registers it as the "interp" engine. The package-level
// Run/RunContext dispatch through the engine registry, so Options.Engine
// selects any registered backend — including the closure-threaded engine
// in internal/threaded — while the historical types remain aliases of the
// engine's and keep every caller source-compatible.
package interp

import (
	"context"

	"gcsafety/internal/engine"
	"gcsafety/internal/interp/internal/dispatch"
	"gcsafety/internal/machine"

	// Register the closure-threaded backend alongside the interpreter, so
	// every surface that reaches execution through this package (the API,
	// ccrun, the daemon, the fuzz matrix) can select either engine by name.
	_ "gcsafety/internal/threaded"
)

// ErrInstrLimit is the sentinel wrapped by the fault produced when a run
// exhausts Options.MaxInstrs. Callers distinguish a runaway program
// (errors.Is(err, ErrInstrLimit)) from a genuine memory fault.
var ErrInstrLimit = engine.ErrInstrLimit

// Options configures one execution (engine-neutral; Options.Engine selects
// the backend).
type Options = engine.Options

// Result reports one execution.
type Result = engine.Result

// A FaultError reports a memory or checking fault with machine context.
type FaultError = engine.FaultError

// CheckError is the error produced when a GC_same_obj-style runtime check
// fails (the paper's pointer-arithmetic checker firing).
type CheckError = engine.CheckError

// TemporalError reports a temporal-safety check failure (see the engine's
// temporal shadow-tag checker).
type TemporalError = engine.TemporalError

// Machine is the switch-dispatch execution engine: the engine-neutral core
// plus this package's dispatch loop.
type Machine struct {
	*engine.Core
}

// New prepares a machine for the program.
func New(prog *machine.Program, opts Options) *Machine {
	return &Machine{Core: engine.NewCore(prog, opts)}
}

// Run executes the program under the engine opts.Engine selects (the
// switch-dispatch interpreter by default) and returns the result.
func Run(prog *machine.Program, opts Options) (*Result, error) {
	return RunContext(context.Background(), prog, opts)
}

// RunContext executes the program under ctx: cancellation or deadline
// expiry aborts the run between two instructions with an error wrapping
// ctx.Err(). This is the entry point the gcsafed daemon uses to bound
// adversarial inputs.
func RunContext(ctx context.Context, prog *machine.Program, opts Options) (*Result, error) {
	return engine.Run(ctx, prog, opts)
}

// Run executes the entry function to completion.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// RunContext executes the entry function to completion or until ctx is
// done, whichever comes first.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	return m.Core.RunWith(ctx, func(entry *machine.Func, retReg machine.Reg) error {
		return dispatch.Call(m.Core, entry, retReg)
	})
}

// interpEngine adapts this package to the engine registry.
type interpEngine struct{}

func (interpEngine) Name() string { return engine.DefaultName }

func (interpEngine) Run(ctx context.Context, prog *machine.Program, opts Options) (*Result, error) {
	return New(prog, opts).RunContext(ctx)
}

func init() { engine.Register(interpEngine{}) }
