// Package interp executes compiled programs on the simulated machine,
// linking them against the conservative collector and the native runtime
// library (the unpreprocessed "standard C library" of the paper's
// methodology). It provides:
//
//   - deterministic cycle accounting under a machine cost model, the
//     basis for every performance table in EXPERIMENTS.md;
//   - conservative root scanning of the register file, the stack and the
//     static data segment;
//   - two collection-trigger regimes: allocation-triggered only (the
//     paper's "collections triggered only at procedure calls" discussion)
//     and asynchronous (a collection may fire between any two
//     instructions), which is the regime the safety argument must survive;
//   - an optional access validator that detects loads and stores to
//     reclaimed heap objects — the harness's premature-collection detector
//     (never part of the cost model).
package interp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/gc"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/machine"
)

// ErrInstrLimit is the sentinel wrapped by the fault produced when a run
// exhausts Options.MaxInstrs. Callers distinguish a runaway program
// (errors.Is(err, ErrInstrLimit)) from a genuine memory fault.
var ErrInstrLimit = errors.New("instruction budget exhausted")

// ctxCheckInterval is how many instructions execute between polls of the
// run's context. Polling a context involves an atomic load and possibly a
// channel select, far more than one simulated instruction; amortizing it
// over a power-of-two stride keeps cancellation latency in the microsecond
// range while costing the interpreter loop nothing measurable.
const ctxCheckInterval = 1024

// Options configures one execution.
type Options struct {
	Config machine.Config
	// HeapBytes caps the collected heap (default 16 MiB).
	HeapBytes uint32
	// TriggerBytes is the allocation-trigger threshold (default 128 KiB).
	TriggerBytes uint32
	// GCEveryInstrs, when nonzero, additionally triggers a collection every
	// N executed instructions — the asynchronous-collector regime.
	GCEveryInstrs uint64
	// CollectAtEveryAlloc forces a full collection at every allocation —
	// the adversarial schedule of the differential fuzzing harness
	// (internal/fuzz). Combined with GCEveryInstrs=1 and Validate it is the
	// most hostile regime the machine can present to a program: any object
	// whose last recognizable reference dies too early is reclaimed and the
	// next access to it faults. It overrides TriggerBytes.
	CollectAtEveryAlloc bool
	// Validate checks every heap access against the live-object map,
	// catching use of prematurely collected objects. Purely a harness
	// feature; adds no cycles.
	Validate bool
	// MaxInstrs aborts runaway programs (default 2e9).
	MaxInstrs uint64
	// BaseOnlyHeap enables the collector's Extensions-section operating
	// mode: interior pointers stored in heap objects are not recognized as
	// references (see internal/gc/extension.go).
	BaseOnlyHeap bool
	// Temporal arms the temporal-safety checker: allocation results carry
	// their birth epoch through shadow tags on registers and memory words,
	// and any access through a pointer whose epoch no longer matches the
	// object at its target faults with a TemporalError (use-after-free /
	// recycled-storage detection; see temporal.go). Like Validate, a harness
	// feature: adds no cycles.
	Temporal bool
	// Threads, when > 1, executes the program as N concurrent mutator
	// threads over one shared heap: thread 0 runs Entry and thread i
	// (0 < i < N) runs the function named "thread<i>" when the program
	// defines it. Scheduling is deterministic — round-robin over runnable
	// threads with quantum lengths drawn from SchedSeed (see threads.go).
	Threads int
	// SchedSeed seeds the interleaving schedule (0 selects a fixed default).
	SchedSeed uint64
	// CollectAtSwitch forces a full collection at every context switch: the
	// collect-at-every-alloc adversary generalized to adversarial
	// interleavings.
	CollectAtSwitch bool
	// Input is the byte stream consumed by getchar().
	Input string
	// Entry is the function to run (default "main").
	Entry string
	// Faults, when non-nil, arms the run's fault points: "interp.step"
	// (fired at the context-poll stride; an error aborts the run with a
	// machine fault), "heapdump.capture" (fails snapshot captures) and,
	// via the heap's Config.Inject hook, "gc.alloc", "gc.collect.force"
	// and "gc.collect". Nil is fully inert.
	Faults *faultinject.Set
	// HeapProfile records allocation sites during the run and captures a
	// heap snapshot when it ends (Result.Snapshot): trigger "exit" on a
	// clean exit, "violation" when a safety checker fired, "fault"
	// otherwise. Off, it costs the dispatch loop nothing; on, it costs one
	// map insert per allocation — allocations are already collector-priced,
	// so the cost model is unchanged either way.
	HeapProfile bool
}

// Result reports one execution.
type Result struct {
	Output   string
	ExitCode int32
	Cycles   uint64
	Instrs   uint64
	GCStats  gc.Stats
	// Snapshot is the end-of-run heap snapshot (Options.HeapProfile only;
	// nil otherwise). SnapshotErr records a failed capture — the run's own
	// outcome is reported normally either way.
	Snapshot    *heapdump.Snapshot
	SnapshotErr string
}

// A FaultError reports a memory or checking fault with machine context.
type FaultError struct {
	Fn  string
	PC  int
	Err error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("fault in %s at pc %d: %v", e.Fn, e.PC, e.Err)
}

func (e *FaultError) Unwrap() error { return e.Err }

// CheckError is the error produced when a GC_same_obj-style runtime check
// fails (the paper's pointer-arithmetic checker firing).
type CheckError struct{ Err error }

func (e *CheckError) Error() string { return "pointer check failed: " + e.Err.Error() }
func (e *CheckError) Unwrap() error { return e.Err }

type frame struct {
	fn      *machine.Func
	pc      int
	savedSP uint32
	retReg  machine.Reg
	// meta caches m.meta[fn]; frames pushed by the cold path leave it nil
	// and the dispatch loop fills it in on first activation.
	meta *funcMeta
}

// funcMeta is per-function metadata precomputed at machine construction so
// the hot dispatch loop never consults a map per instruction: targets holds
// the resolved destination pc for every Jmp/Bz/Bnz (aligned with Code),
// callees the resolved *Func for every direct Call into program code (nil
// for runtime builtins, which dispatch by name), and calleeMeta the callee's
// own funcMeta, so pushing a frame needs no map lookup either.
type funcMeta struct {
	targets    []int
	callees    []*machine.Func
	calleeMeta []*funcMeta
}

// Machine is the execution engine.
type Machine struct {
	prog   *machine.Program
	opts   Options
	ctx    context.Context
	cfg    machine.Config
	heap   *gc.Heap
	regs   []uint32
	sp     uint32
	static []byte
	stack  []byte
	labels map[string]map[int32]int
	byID   map[int32]*machine.Func
	meta   map[*machine.Func]*funcMeta
	// costs caches Config.CostOf per opcode: one slice index in the hot
	// loop instead of a switch.
	costs  [machine.NumOps]uint64
	out    strings.Builder
	in     int
	cycles uint64
	instrs uint64
	rng    uint32
	exited bool
	exit   int32
	// pendingRet carries the value of the most recent Ret to the caller's
	// result register.
	pendingRet uint32
	// sinceGC counts instructions since the last async collection.
	sinceGC uint64
	// argbuf backs runtimeCall's argument slice so runtime dispatch —
	// including every checked-mode GC_same_obj/GC_pre_incr call — stays
	// allocation-free on the host.
	argbuf [8]uint32
	// tt is the temporal-mode shadow-tag state; nil unless Options.Temporal
	// (the hot loop pays one nil check).
	tt *temporalState
	// stackLo/stackHi bound the current thread's stack segment for AdjSP;
	// they are the whole stack in single-thread mode.
	stackLo, stackHi uint32
	// Concurrent-mutator state (nil/zero in single-thread mode).
	threads  []*mthread
	cur      int
	schedRng uint64
	// prof is the allocation-site profile; nil unless Options.HeapProfile
	// (runtime-call dispatch pays one nil check).
	prof *allocProf
	// snapPending holds at most one cross-goroutine snapshot request,
	// served at the context-poll stride; snapDone flips once the run is
	// over, after which requesters capture on their own goroutine. See
	// snapshot.go for the handshake.
	snapPending atomic.Pointer[snapRequest]
	snapDone    atomic.Bool
}

// New prepares a machine for the program.
func New(prog *machine.Program, opts Options) *Machine {
	if opts.HeapBytes == 0 {
		opts.HeapBytes = 16 << 20
	}
	if opts.TriggerBytes == 0 {
		opts.TriggerBytes = 128 << 10
	}
	if opts.CollectAtEveryAlloc {
		opts.TriggerBytes = 1
	}
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 2_000_000_000
	}
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	m := &Machine{
		prog:   prog,
		opts:   opts,
		ctx:    context.Background(),
		cfg:    opts.Config,
		regs:   make([]uint32, opts.Config.NumRegs),
		sp:     machine.StackTop,
		static: append([]byte(nil), prog.Data...),
		stack:  make([]byte, machine.StackTop-machine.StackLimit),
		labels: map[string]map[int32]int{},
		byID:   map[int32]*machine.Func{},
		rng:    0x9E3779B9,

		stackLo: machine.StackLimit,
		stackHi: machine.StackTop,
	}
	if opts.Temporal {
		m.tt = newTemporalState(int(opts.Config.NumRegs))
	}
	if opts.HeapProfile {
		m.prof = newAllocProf()
	}
	hcfg := gc.Config{
		MaxBytes:             opts.HeapBytes,
		TriggerBytes:         opts.TriggerBytes,
		Poison:               true,
		BaseOnlyHeapPointers: opts.BaseOnlyHeap,
	}
	if opts.Faults != nil {
		hcfg.Inject = opts.Faults.Fire
	}
	m.heap = gc.NewHeap(hcfg)
	m.heap.SetRoots(gc.RootFunc(m.scanRoots))
	m.meta = make(map[*machine.Func]*funcMeta, len(prog.Funcs))
	for name, f := range prog.Funcs {
		lm := map[int32]int{}
		for pc, in := range f.Code {
			if in.Op == machine.Label {
				lm[in.Imm] = pc
			}
		}
		m.labels[name] = lm
		m.byID[f.ID] = f
	}
	// Second pass: resolve branch targets and direct-call targets now that
	// every label and function is known. An unknown label resolves to pc 0,
	// matching the zero value the label-map lookup used to produce.
	for _, f := range prog.Funcs {
		m.meta[f] = &funcMeta{
			targets:    make([]int, len(f.Code)),
			callees:    make([]*machine.Func, len(f.Code)),
			calleeMeta: make([]*funcMeta, len(f.Code)),
		}
	}
	for _, f := range prog.Funcs {
		fm := m.meta[f]
		lm := m.labels[f.Name]
		for pc, in := range f.Code {
			switch in.Op {
			case machine.Jmp, machine.Bz, machine.Bnz:
				fm.targets[pc] = lm[in.Imm]
			case machine.Call:
				if callee := prog.Funcs[in.Sym]; callee != nil {
					fm.callees[pc] = callee
					fm.calleeMeta[pc] = m.meta[callee]
				}
			}
		}
	}
	for op := 0; op < machine.NumOps; op++ {
		m.costs[op] = m.cfg.CostOf(machine.Op(op))
	}
	return m
}

// Run executes the program and returns the result.
func Run(prog *machine.Program, opts Options) (*Result, error) {
	m := New(prog, opts)
	return m.Run()
}

// RunContext executes the program under ctx: cancellation or deadline
// expiry aborts the run between two instructions with an error wrapping
// ctx.Err(). This is the entry point the gcsafed daemon uses to bound
// adversarial inputs.
func RunContext(ctx context.Context, prog *machine.Program, opts Options) (*Result, error) {
	m := New(prog, opts)
	return m.RunContext(ctx)
}

// Run executes the entry function to completion.
func (m *Machine) Run() (*Result, error) {
	return m.RunContext(context.Background())
}

// RunContext executes the entry function to completion or until ctx is
// done, whichever comes first.
func (m *Machine) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m.ctx = ctx
	defer m.finishSnapshots()
	entry, ok := m.prog.Funcs[m.opts.Entry]
	if !ok {
		return nil, fmt.Errorf("interp: no function %q", m.opts.Entry)
	}
	if err := ctx.Err(); err != nil {
		return m.result(), fmt.Errorf("interp: %w", err)
	}
	var runErr error
	if m.opts.Threads > 1 {
		runErr = m.runThreads(entry)
	} else {
		runErr = m.call(entry, machine.NoReg)
	}
	res := m.result()
	if m.opts.HeapProfile {
		trigger, addr := snapshotTrigger(runErr)
		reason := ""
		if runErr != nil {
			reason = runErr.Error()
		}
		if snap, err := m.CaptureSnapshot(trigger, reason, addr); err != nil {
			res.SnapshotErr = err.Error()
		} else {
			res.Snapshot = snap
		}
	}
	return res, runErr
}

func (m *Machine) result() *Result {
	return &Result{
		Output:   m.out.String(),
		ExitCode: m.exit,
		Cycles:   m.cycles,
		Instrs:   m.instrs,
		GCStats:  m.heap.Stats(),
	}
}

// scanRoots feeds the collector every word in the register file, the live
// stack, and the static data segment. In concurrent mode every live
// thread's register file and stack segment is a root set: a collection one
// thread triggers must see the pointers every other thread still holds.
func (m *Machine) scanRoots(visit func(gc.Addr)) {
	if m.threads != nil {
		for i, t := range m.threads {
			if t.done {
				continue
			}
			sp := t.sp
			if i == m.cur {
				sp = m.sp // regs alias t.regs; only sp is cached in m
			}
			for _, r := range t.regs {
				visit(r)
			}
			for a := sp &^ 3; a < t.hi; a += 4 {
				w, err := m.read32raw(a)
				if err == nil {
					visit(w)
				}
			}
		}
	} else {
		for _, r := range m.regs {
			visit(r)
		}
		for a := m.sp &^ 3; a < machine.StackTop; a += 4 {
			w, err := m.read32raw(a)
			if err == nil {
				visit(w)
			}
		}
	}
	base := machine.DataBase
	for off := 0; off+4 <= len(m.static); off += 4 {
		visit(uint32(m.static[off]) | uint32(m.static[off+1])<<8 |
			uint32(m.static[off+2])<<16 | uint32(m.static[off+3])<<24)
	}
	_ = base
}

// Stats exposes collector statistics mid-run (for tests).
func (m *Machine) Stats() gc.Stats { return m.heap.Stats() }

// Heap exposes the collector (for tests and the checker example).
func (m *Machine) Heap() *gc.Heap { return m.heap }
