package interp

import (
	"errors"
	"testing"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/machine"
)

const allocLoop = `
int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) {
        int *p = (int *)GC_malloc(32);
        *p = i;
    }
    print_str("done\n");
    return 0;
}
`

func TestInjectedStepFaultAbortsRun(t *testing.T) {
	prog := compileSrc(t, infiniteLoop)
	faults, err := faultinject.Parse("interp.step=error,after=3,msg=step-down", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := Run(prog, Options{Config: machine.SPARCstation10(), Faults: faults})
	if runErr == nil {
		t.Fatal("infinite loop terminated without the injected fault")
	}
	if !errors.Is(runErr, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want an injected fault", runErr)
	}
	var fe *FaultError
	if !errors.As(runErr, &fe) {
		t.Fatalf("injected fault not wrapped in a FaultError: %v", runErr)
	}
}

func TestInjectedAllocFaultReachesProgram(t *testing.T) {
	prog := compileSrc(t, allocLoop)
	faults, err := faultinject.Parse("gc.alloc=error,after=10", 1)
	if err != nil {
		t.Fatal(err)
	}
	_, runErr := Run(prog, Options{Config: machine.SPARCstation10(), Faults: faults})
	if runErr == nil {
		t.Fatal("run survived an allocator that fails every alloc past 10")
	}
	if !errors.Is(runErr, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want an injected fault", runErr)
	}
}

func TestForcedCollectionScheduleIsSafeForWellBehavedPrograms(t *testing.T) {
	prog := compileSrc(t, allocLoop)
	faults, err := faultinject.Parse("gc.collect.force=error,p=0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	res, runErr := Run(prog, Options{Config: machine.SPARCstation10(), Faults: faults, Validate: true})
	if runErr != nil {
		t.Fatalf("well-behaved program faulted under a perturbed collection schedule: %v", runErr)
	}
	if res.Output != "done\n" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.GCStats.Collections == 0 {
		t.Fatal("schedule perturbation never forced a collection")
	}
	// Same program, no faults: far fewer (likely zero) collections.
	base, err2 := Run(compileSrc(t, allocLoop), Options{Config: machine.SPARCstation10()})
	if err2 != nil {
		t.Fatal(err2)
	}
	if base.GCStats.Collections >= res.GCStats.Collections {
		t.Fatalf("forced schedule ran %d collections, baseline %d",
			res.GCStats.Collections, base.GCStats.Collections)
	}
}

func TestNilFaultsIsInert(t *testing.T) {
	prog := compileSrc(t, allocLoop)
	res, err := Run(prog, Options{Config: machine.SPARCstation10()})
	if err != nil || res.Output != "done\n" {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
