// Package dispatch is the switch-dispatch interpreter loop — the "interp"
// engine's only engine-specific code. It lives under internal/interp's own
// internal/ directory deliberately: the Go import-path rule makes it
// unimportable from internal/threaded (or anywhere else outside
// internal/interp), so the layering constraint "alternate engines build
// only against the engine-neutral core" is enforced by the toolchain, not
// by convention.
package dispatch

import (
	"fmt"

	"gcsafety/internal/engine"
	"gcsafety/internal/machine"
)

// Call runs fn to completion (including nested calls) using an explicit
// frame stack, so a collection can fire between any two instructions.
//
// The loop is the interpreter's hottest code: the common opcodes (ALU,
// loads/stores, branches, call/ret) are dispatched inline here, with the
// program counter, code slice and per-function metadata (resolved branch
// targets and direct-call targets) held in locals for the duration of a
// frame activation; everything else falls back to the core's Step.
// Per-instruction bookkeeping is kept to the instruction budget check, a
// poll countdown (replacing the old modulo), one table-indexed cycle
// charge, and — only when the asynchronous regime is armed — the GC tick.
// The cycle and instruction accounting, the poll schedule and the
// collection schedule are bit-identical to the pre-fast-path interpreter:
// those numbers are the reproduction's data.
func Call(c *engine.Core, entry *machine.Func, retReg machine.Reg) error {
	stack := make([]engine.Frame, 1, 16)
	stack[0] = engine.Frame{Fn: entry, PC: 0, SavedSP: c.SP, RetReg: retReg}
	var (
		maxInstrs = c.Opts.MaxInstrs
		gcEvery   = c.Opts.GCEveryInstrs
		costs     = &c.Costs
		// tt is nil outside temporal mode; holding it in a local keeps the
		// per-instruction shadow-tag branch off a field load.
		tt = c.TT
		// pollCd counts down to the next context poll so the hot loop pays
		// one decrement instead of a modulo. It reproduces the schedule
		// "poll when instrs%PollInterval == 0" exactly.
		pollCd = c.Instrs % engine.PollInterval
	)
	if pollCd != 0 {
		pollCd = engine.PollInterval - pollCd
	}
	for len(stack) > 0 && !c.Exited {
		fr := &stack[len(stack)-1]
		fn := fr.Fn
		code := fn.Code
		meta := fr.Meta
		if meta == nil {
			meta = c.MetaOf(fn)
			fr.Meta = meta
		}
		pc := fr.PC
	frame:
		for {
			if pc >= len(code) {
				// fall off the end: return 0
				c.SP = fr.SavedSP
				c.SetReg(fr.RetReg, 0)
				if tt != nil {
					tt.SetTag(fr.RetReg, 0)
				}
				stack = stack[:len(stack)-1]
				break frame
			}
			in := &code[pc]
			if c.Instrs >= maxInstrs {
				fr.PC = pc
				return &engine.FaultError{Fn: fn.Name, PC: pc,
					Err: fmt.Errorf("%w (%d)", engine.ErrInstrLimit, maxInstrs)}
			}
			if pollCd == 0 {
				if err := c.Poll(); err != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc, Err: err}
				}
				pollCd = engine.PollInterval
			}
			pollCd--
			c.Instrs++
			c.Cycles += costs[in.Op]
			// Asynchronous collection regime: a GC may fire between any two
			// instructions.
			if gcEvery > 0 {
				c.SinceGC++
				if c.SinceGC >= gcEvery {
					c.SinceGC = 0
					c.Heap().Collect()
				}
			}
			if tt != nil {
				if err := c.Track(in); err != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc, Err: err}
				}
			}
			pc++
			switch in.Op {
			case machine.Add:
				c.SetReg(in.Rd, c.Reg(in.Rs1)+c.Src2(in))
			case machine.Sub:
				c.SetReg(in.Rd, c.Reg(in.Rs1)-c.Src2(in))
			case machine.Mov:
				c.SetReg(in.Rd, c.Src2First(in))
			case machine.Ld:
				v, e := c.Read32(c.Reg(in.Rs1) + c.Src2(in))
				if e != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
				c.SetReg(in.Rd, v)
			case machine.St:
				if e := c.Write32(c.Reg(in.Rs1)+c.Src2(in), c.Reg(in.Rd)); e != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
			case machine.LdSP:
				v, e := c.Read32(c.SP + uint32(in.Imm))
				if e != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
				c.SetReg(in.Rd, v)
			case machine.StSP, machine.Arg:
				if e := c.Write32(c.SP+uint32(in.Imm), c.Reg(in.Rd)); e != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1, Err: e}
				}
			case machine.LeaSP:
				c.SetReg(in.Rd, c.SP+uint32(in.Imm))
			case machine.Jmp:
				pc = meta.Targets[pc-1]
			case machine.Bz:
				if c.Reg(in.Rs1) == 0 {
					pc = meta.Targets[pc-1]
				}
			case machine.Bnz:
				if c.Reg(in.Rs1) != 0 {
					pc = meta.Targets[pc-1]
				}
			case machine.CmpEq:
				c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) == c.Src2(in)))
			case machine.CmpNe:
				c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) != c.Src2(in)))
			case machine.CmpLt:
				c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) < int32(c.Src2(in))))
			case machine.CmpLe:
				c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) <= int32(c.Src2(in))))
			case machine.CmpGt:
				c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) > int32(c.Src2(in))))
			case machine.CmpGe:
				c.SetReg(in.Rd, b2u(int32(c.Reg(in.Rs1)) >= int32(c.Src2(in))))
			case machine.CmpLtu:
				c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) < c.Src2(in)))
			case machine.CmpLeu:
				c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) <= c.Src2(in)))
			case machine.CmpGtu:
				c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) > c.Src2(in)))
			case machine.CmpGeu:
				c.SetReg(in.Rd, b2u(c.Reg(in.Rs1) >= c.Src2(in)))
			case machine.Nop, machine.Label:
			case machine.KeepLive:
				// The empty asm: value flows through unchanged; the base
				// operand is merely kept live by its presence here.
				c.SetReg(in.Rd, c.Reg(in.Rs1))
			case machine.AdjSP:
				ns := c.SP + uint32(in.Imm)
				if ns < c.StackLo || ns > c.StackHi {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1,
						Err: fmt.Errorf("stack overflow (sp=%#x)", ns)}
				}
				c.SP = ns
			case machine.Ret:
				if in.Rs1 != machine.NoReg {
					c.PendingRet = c.Reg(in.Rs1)
				} else {
					c.PendingRet = 0
				}
				c.SP = fr.SavedSP
				c.SetReg(fr.RetReg, c.PendingRet)
				if tt != nil {
					tt.SetTag(fr.RetReg, tt.RetTag)
				}
				stack = stack[:len(stack)-1]
				break frame
			case machine.Call:
				if callee := meta.Callees[pc-1]; callee != nil {
					fr.PC = pc
					stack = append(stack, engine.Frame{Fn: callee, PC: 0, SavedSP: c.SP,
						RetReg: in.Rd, Meta: meta.CalleeMeta[pc-1]})
					break frame
				}
				v, err := c.RuntimeCall(fn.Name, in)
				if err != nil {
					fr.PC = pc
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1, Err: err}
				}
				c.SetReg(in.Rd, v)
				if tt != nil {
					tt.SetTag(in.Rd, tt.RetTag)
				}
				if c.Exited {
					fr.PC = pc
					break frame
				}
			default:
				fr.PC = pc
				ret, push, err := c.Step(fr, in)
				if err != nil {
					return &engine.FaultError{Fn: fn.Name, PC: pc - 1, Err: err}
				}
				if push != nil {
					stack = append(stack, *push)
					break frame
				}
				if ret {
					c.SP = fr.SavedSP
					c.SetReg(fr.RetReg, c.PendingRet)
					if tt != nil {
						tt.SetTag(fr.RetReg, tt.RetTag)
					}
					stack = stack[:len(stack)-1]
					break frame
				}
				if c.Exited {
					break frame
				}
				pc = fr.PC // step may have redirected control flow
			}
		}
	}
	return nil
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
