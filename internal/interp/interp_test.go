package interp

import (
	"strings"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/machine"
)

// compileAndRun builds a C source with the given pipeline and executes it.
func compileAndRun(t *testing.T, src string, optimize bool, opts Options) *Result {
	t.Helper()
	file, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cfg := machine.SPARCstation10()
	prog, err := codegen.Compile(file, codegen.Options{Optimize: optimize, Machine: cfg})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opts.Config = cfg
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("run: %v\noutput so far: %q", err, res.Output)
	}
	return res
}

// runBoth runs the program in both pipelines and checks they agree.
func runBoth(t *testing.T, src, want string) {
	t.Helper()
	for _, opt := range []bool{false, true} {
		res := compileAndRun(t, src, opt, Options{Validate: true})
		if res.Output != want {
			t.Errorf("optimize=%v: output = %q, want %q", opt, res.Output, want)
		}
	}
}

func TestHelloWorld(t *testing.T) {
	runBoth(t, `
int main() {
    print_str("hello, world\n");
    return 0;
}
`, "hello, world\n")
}

func TestArithmetic(t *testing.T) {
	runBoth(t, `
int main() {
    int a = 6;
    int b = 7;
    print_int(a * b);
    print_int(-3 + 5);
    print_int(17 / 5);
    print_int(17 % 5);
    print_int(1 << 10);
    print_int(-8 >> 1);
    return 0;
}
`, "422321024-4")
}

func TestUnsignedArithmetic(t *testing.T) {
	runBoth(t, `
int main() {
    unsigned a = 0xFFFFFFF0u;
    unsigned b = a >> 4;
    print_int(b == 0x0FFFFFFF);
    print_int(a / 16 == b);
    print_int(3000000000u > 5u);
    return 0;
}
`, "111")
}

func TestControlFlow(t *testing.T) {
	runBoth(t, `
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
        steps++;
    }
    return steps;
}
int main() {
    print_int(collatz(27));
    return 0;
}
`, "111")
}

func TestForLoopAndBreakContinue(t *testing.T) {
	runBoth(t, `
int main() {
    int i;
    int s = 0;
    for (i = 0; i < 20; i++) {
        if (i % 2) continue;
        if (i > 10) break;
        s += i;
    }
    print_int(s);
    return 0;
}
`, "30")
}

func TestSwitch(t *testing.T) {
	runBoth(t, `
int classify(int c) {
    switch (c) {
    case 1:
    case 2: return 10;
    case 3: return 20;
    default: return 30;
    }
}
int main() {
    print_int(classify(1));
    print_int(classify(2));
    print_int(classify(3));
    print_int(classify(99));
    return 0;
}
`, "10102030")
}

func TestSwitchFallthrough(t *testing.T) {
	runBoth(t, `
int main() {
    int x = 2;
    int s = 0;
    switch (x) {
    case 1: s += 1;
    case 2: s += 2;
    case 3: s += 4;
        break;
    case 4: s += 8;
    }
    print_int(s);
    return 0;
}
`, "6")
}

func TestRecursion(t *testing.T) {
	runBoth(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    print_int(fib(15));
    return 0;
}
`, "610")
}

func TestGlobals(t *testing.T) {
	runBoth(t, `
int counter = 5;
int table[4] = {10, 20, 30, 40};
char *msg = "ok";
int main() {
    counter += 2;
    print_int(counter);
    print_int(table[2]);
    print_str(msg);
    return 0;
}
`, "730ok")
}

func TestHeapAllocation(t *testing.T) {
	runBoth(t, `
int main() {
    int *p = (int *)GC_malloc(10 * sizeof(int));
    int i;
    for (i = 0; i < 10; i++) p[i] = i * i;
    int s = 0;
    for (i = 0; i < 10; i++) s += p[i];
    print_int(s);
    return 0;
}
`, "285")
}

func TestLinkedListSurvivesGC(t *testing.T) {
	src := `
struct node { int val; struct node *next; };
struct node *cons(int v, struct node *rest) {
    struct node *n = (struct node *)GC_malloc(sizeof(struct node));
    n->val = v;
    n->next = rest;
    return n;
}
int main() {
    struct node *head = 0;
    int i;
    for (i = 0; i < 1000; i++) {
        head = cons(i, head);
        /* garbage to provoke collections */
        GC_malloc(64);
    }
    int s = 0;
    struct node *p;
    for (p = head; p != 0; p = p->next) s += p->val;
    print_int(s);
    return 0;
}
`
	for _, opt := range []bool{false, true} {
		res := compileAndRun(t, src, opt, Options{Validate: true, TriggerBytes: 8 << 10})
		if res.Output != "499500" {
			t.Errorf("optimize=%v: output = %q", opt, res.Output)
		}
		if res.GCStats.Collections == 0 {
			t.Errorf("optimize=%v: expected collections to run", opt)
		}
	}
}

func TestStringsRuntime(t *testing.T) {
	runBoth(t, `
int main() {
    char *buf = (char *)GC_malloc(64);
    strcpy(buf, "abc");
    strcat(buf, "def");
    print_int(strlen(buf));
    print_int(strcmp(buf, "abcdef") == 0);
    print_int(strcmp(buf, "abcdeg") < 0);
    char *p = strchr(buf, 'd');
    print_str(p);
    return 0;
}
`, "611def")
}

func TestPointerArithmetic(t *testing.T) {
	runBoth(t, `
int main() {
    char *s = (char *)GC_malloc(16);
    strcpy(s, "hello");
    char *p = s;
    int n = 0;
    while (*p++) n++;
    print_int(n);
    int *xs = (int *)GC_malloc(4 * sizeof(int));
    int *q = xs;
    *q++ = 1; *q++ = 2; *q++ = 3;
    print_int(q - xs);
    print_int(xs[0] + xs[1] + xs[2]);
    return 0;
}
`, "536")
}

func TestStructMembers(t *testing.T) {
	runBoth(t, `
struct point { int x; int y; };
struct rect { struct point lo; struct point hi; };
int area(struct rect *r) {
    return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}
int main() {
    struct rect r;
    r.lo.x = 1; r.lo.y = 2; r.hi.x = 5; r.hi.y = 7;
    print_int(area(&r));
    return 0;
}
`, "20")
}

func TestCharShortWidths(t *testing.T) {
	runBoth(t, `
int main() {
    char c = 200;       /* wraps to -56 as signed char */
    unsigned char u = 200;
    short s = 40000;    /* wraps negative */
    unsigned short w = 40000;
    print_int(c);
    print_int(u);
    print_int(s < 0);
    print_int(w);
    return 0;
}
`, "-56200140000")
}

func TestConditionalAndLogical(t *testing.T) {
	runBoth(t, `
int sideEffects = 0;
int bump() { sideEffects++; return 1; }
int main() {
    int x = 5 > 3 ? 10 : 20;
    print_int(x);
    if (0 && bump()) {}
    if (1 || bump()) {}
    print_int(sideEffects); /* short circuit: no calls */
    print_int(!0);
    print_int(~0 == -1);
    return 0;
}
`, "10011")
}

func TestFunctionPointers(t *testing.T) {
	runBoth(t, `
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
int apply(int (*f)(int), int x) { return f(x); }
int main() {
    print_int(apply(twice, 10));
    print_int(apply(thrice, 10));
    return 0;
}
`, "2030")
}

func TestStructAssignment(t *testing.T) {
	runBoth(t, `
struct pair { int a; int b; };
int main() {
    struct pair x;
    struct pair y;
    x.a = 3; x.b = 4;
    y = x;
    y.a = 9;
    print_int(x.a + x.b + y.a + y.b);
    return 0;
}
`, "20")
}

func TestGetcharInput(t *testing.T) {
	src := `
int main() {
    int c;
    int n = 0;
    while ((c = getchar()) != -1) {
        if (c == 'x') n++;
    }
    print_int(n);
    return 0;
}
`
	res := compileAndRun(t, src, true, Options{Validate: true, Input: "axbxcx"})
	if res.Output != "3" {
		t.Fatalf("output = %q", res.Output)
	}
}

func TestMallocMapsToCollector(t *testing.T) {
	runBoth(t, `
int main() {
    int i;
    for (i = 0; i < 20000; i++) {
        char *p = (char *)malloc(100);
        p[0] = 1;
        free(p); /* removed by the runtime; collector reclaims */
    }
    print_str("done");
    return 0;
}
`, "done")
}

func TestTwoDimensionalArrays(t *testing.T) {
	runBoth(t, `
int grid[3][4];
int main() {
    int i; int j;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            grid[i][j] = i * 10 + j;
    print_int(grid[2][3]);
    print_int(grid[0][1]);
    return 0;
}
`, "231")
}

func TestExitCode(t *testing.T) {
	res := compileAndRun(t, `int main() { exit(42); print_str("unreachable"); return 0; }`,
		true, Options{})
	if res.ExitCode != 42 {
		t.Fatalf("exit code = %d", res.ExitCode)
	}
	if res.Output != "" {
		t.Fatalf("output after exit: %q", res.Output)
	}
}

func TestCyclesAccounted(t *testing.T) {
	res := compileAndRun(t, `
int main() {
    int i; int s = 0;
    for (i = 0; i < 1000; i++) s += i;
    print_int(s);
    return 0;
}
`, true, Options{})
	if res.Cycles == 0 || res.Instrs == 0 {
		t.Fatalf("no accounting: %+v", res)
	}
	if res.Cycles < res.Instrs/2 {
		t.Fatalf("cycle count implausible: %d cycles for %d instrs", res.Cycles, res.Instrs)
	}
}

func TestOptimizedIsFaster(t *testing.T) {
	src := `
int main() {
    int i; int s = 0;
    int arr[50];
    for (i = 0; i < 50; i++) arr[i] = i;
    for (i = 0; i < 50; i++) s += arr[i] * 2 + 1;
    print_int(s);
    return 0;
}
`
	dbg := compileAndRun(t, src, false, Options{})
	opt := compileAndRun(t, src, true, Options{})
	if dbg.Output != opt.Output {
		t.Fatalf("outputs differ: %q vs %q", dbg.Output, opt.Output)
	}
	if opt.Cycles >= dbg.Cycles {
		t.Fatalf("optimized (%d cycles) not faster than debug (%d cycles)", opt.Cycles, dbg.Cycles)
	}
}

func TestRealloc(t *testing.T) {
	runBoth(t, `
int main() {
    int *p = (int *)malloc(2 * sizeof(int));
    p[0] = 11; p[1] = 22;
    p = (int *)realloc((void *)p, 4 * sizeof(int));
    p[2] = 33; p[3] = 44;
    print_int(p[0] + p[1] + p[2] + p[3]);
    return 0;
}
`, "110")
}

func TestDeepCallStack(t *testing.T) {
	runBoth(t, `
int down(int n) {
    if (n == 0) return 0;
    return 1 + down(n - 1);
}
int main() {
    print_int(down(500));
    return 0;
}
`, "500")
}

func TestAsyncGCRegime(t *testing.T) {
	// With a collection possible between any two instructions, correctly
	// rooted programs must still work.
	src := `
struct node { int val; struct node *next; };
int main() {
    struct node *head = 0;
    int i;
    for (i = 0; i < 50; i++) {
        struct node *n = (struct node *)GC_malloc(sizeof(struct node));
        n->val = i;
        n->next = head;
        head = n;
    }
    int s = 0;
    while (head) { s += head->val; head = head->next; }
    print_int(s);
    return 0;
}
`
	res := compileAndRun(t, src, false, Options{Validate: true, GCEveryInstrs: 7})
	if res.Output != "1225" {
		t.Fatalf("output = %q", res.Output)
	}
	if res.GCStats.Collections == 0 {
		t.Fatal("async regime never collected")
	}
}

func TestUndefinedFunctionFault(t *testing.T) {
	file, err := parser.Parse("t.c", `int main() { nosuchfn(); return 0; }`)
	if err == nil || !strings.Contains(err.Error(), "implicit declaration") {
		t.Fatalf("expected implicit-declaration diagnostic, got %v", err)
	}
	_ = file
}
