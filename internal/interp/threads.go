package interp

import (
	"errors"
	"fmt"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/machine"
)

// Concurrent-mutator simulation. The machine stays single-threaded on the
// host: N simulated mutator threads share one heap, one static segment and
// one output stream, and are interleaved cooperatively — round-robin over
// the runnable threads, with quantum lengths drawn from a seeded xorshift64
// and bounded by the interpreter's existing poll stride. The schedule is a
// pure function of (program, input, seed): every run of a treatment is
// bit-identical, which is what lets concurrent treatments participate in
// differential testing at all. Thread 0 executes the entry function; thread
// i executes the program's "thread<i>" function when defined (absent
// workers are skipped). The stack is carved into equal per-thread segments,
// thread 0 topmost. A fault in any thread aborts the whole run; exit()
// stops all threads.

// errJoinWait is the internal sentinel the join_threads builtin returns
// while sibling threads are still running: the scheduler rewinds the call
// instruction and retries it on the thread's next quantum.
var errJoinWait = errors.New("join_threads: siblings still running")

// mthread is one simulated mutator thread: a frame stack plus the
// per-thread machine state (registers, stack pointer, stack segment
// bounds, temporal shadow tags for the register file).
type mthread struct {
	id      int
	frames  []frame
	regs    []uint32
	regTags []uint32 // nil unless temporal mode
	sp      uint32
	lo, hi  uint32 // stack segment bounds
	done    bool
}

// threadEntryName is the naming convention binding worker i to its entry
// function.
func threadEntryName(i int) string { return fmt.Sprintf("thread%d", i) }

// runThreads executes entry as thread 0 alongside up to Threads-1 workers.
func (m *Machine) runThreads(entry *machine.Func) error {
	n := m.opts.Threads
	total := uint32(machine.StackTop - machine.StackLimit)
	seg := (total / uint32(n)) &^ 255
	if seg < 4096 {
		return fmt.Errorf("interp: %d threads leave only %d bytes of stack each", n, seg)
	}
	for i := 0; i < n; i++ {
		fn := entry
		if i > 0 {
			fn = m.prog.Funcs[threadEntryName(i)]
			if fn == nil {
				continue
			}
		}
		hi := uint32(machine.StackTop) - uint32(i)*seg
		t := &mthread{
			id:   i,
			regs: make([]uint32, len(m.regs)),
			sp:   hi,
			lo:   hi - seg,
			hi:   hi,
		}
		if m.tt != nil {
			t.regTags = make([]uint32, len(m.regs))
		}
		t.frames = append(t.frames, frame{fn: fn, pc: 0, savedSP: hi, retReg: machine.NoReg})
		m.threads = append(m.threads, t)
	}
	m.schedRng = m.opts.SchedSeed
	if m.schedRng == 0 {
		m.schedRng = 0x9E3779B97F4A7C15
	}
	m.cur = -1
	for !m.exited {
		next := m.pickThread()
		if next < 0 {
			break // every thread ran to completion
		}
		if next != m.cur {
			m.switchTo(next)
			if m.opts.CollectAtSwitch {
				m.heap.Collect()
			}
		}
		quantum := 1 + m.schedNext()%ctxCheckInterval
		if err := m.execQuantum(m.threads[next], quantum); err != nil {
			return err
		}
	}
	return nil
}

// pickThread selects the next runnable thread, round-robin from the one
// after the current.
func (m *Machine) pickThread() int {
	n := len(m.threads)
	if n == 0 {
		return -1
	}
	start := (m.cur + 1 + n) % n
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if !m.threads[i].done {
			return i
		}
	}
	return -1
}

// schedNext advances the schedule's xorshift64 state.
func (m *Machine) schedNext() uint64 {
	x := m.schedRng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	m.schedRng = x
	return x
}

// switchTo makes thread i current: the outgoing thread's stack pointer is
// saved, and the machine's register file, stack bounds and temporal tags
// are re-aimed at the incoming thread's. Register slices are aliased, not
// copied, so the collector always sees every thread's live registers.
func (m *Machine) switchTo(i int) {
	if m.cur >= 0 {
		m.threads[m.cur].sp = m.sp
	}
	t := m.threads[i]
	m.cur = i
	m.regs = t.regs
	m.sp = t.sp
	m.stackLo, m.stackHi = t.lo, t.hi
	if m.tt != nil {
		m.tt.regTags = t.regTags
	}
}

// threadsRemaining reports whether any thread other than the current one is
// still running (the join_threads condition).
func (m *Machine) threadsRemaining() bool {
	for i, t := range m.threads {
		if i != m.cur && !t.done {
			return true
		}
	}
	return false
}

// execQuantum runs up to quantum instructions of thread t. It mirrors the
// single-thread loop's per-instruction bookkeeping (instruction budget,
// context poll, cycle accounting, asynchronous-GC tick) but dispatches
// every opcode through the cold-path step: concurrent treatments are new
// measurement columns, not cycle-compatible reruns of the single-thread
// numbers, so the inline fast path is not duplicated here.
func (m *Machine) execQuantum(t *mthread, quantum uint64) error {
	var (
		maxInstrs = m.opts.MaxInstrs
		gcEvery   = m.opts.GCEveryInstrs
		faults    = m.opts.Faults
	)
	for quantum > 0 && len(t.frames) > 0 && !m.exited {
		fr := &t.frames[len(t.frames)-1]
		if fr.pc >= len(fr.fn.Code) {
			m.popFrame(t, 0, true) // fall off the end: return 0
			continue
		}
		in := &fr.fn.Code[fr.pc]
		if m.instrs >= maxInstrs {
			return &FaultError{Fn: fr.fn.Name, PC: fr.pc,
				Err: fmt.Errorf("%w (%d)", ErrInstrLimit, maxInstrs)}
		}
		if m.instrs%ctxCheckInterval == 0 {
			if err := m.ctx.Err(); err != nil {
				return &FaultError{Fn: fr.fn.Name, PC: fr.pc, Err: err}
			}
			if faults != nil {
				if err := faults.Fire(faultinject.PointInterpStep); err != nil {
					return &FaultError{Fn: fr.fn.Name, PC: fr.pc, Err: err}
				}
			}
			// The concurrent scheduler's poll is also a snapshot-serving
			// safe point: all mutator threads are stopped here.
			if m.snapPending.Load() != nil {
				m.serveSnapshot()
			}
		}
		m.instrs++
		m.cycles += m.costs[in.Op]
		if gcEvery > 0 {
			m.sinceGC++
			if m.sinceGC >= gcEvery {
				m.sinceGC = 0
				m.heap.Collect()
			}
		}
		quantum--
		if m.tt != nil {
			if err := m.track(in); err != nil {
				return &FaultError{Fn: fr.fn.Name, PC: fr.pc, Err: err}
			}
		}
		pc := fr.pc
		fr.pc = pc + 1
		ret, push, err := m.step(fr, in)
		if err != nil {
			if errors.Is(err, errJoinWait) {
				fr.pc = pc // retry the join on the next quantum
				return nil // yield
			}
			return &FaultError{Fn: fr.fn.Name, PC: pc, Err: err}
		}
		if push != nil {
			t.frames = append(t.frames, *push)
			continue
		}
		if ret {
			m.popFrame(t, m.pendingRet, false)
		}
	}
	if len(t.frames) == 0 {
		t.done = true
	}
	return nil
}

// popFrame completes t's top frame, restoring the caller's stack pointer
// and delivering val to the result register (with its temporal tag, unless
// the frame fell off the end, which returns an untagged 0).
func (m *Machine) popFrame(t *mthread, val uint32, fallOff bool) {
	fr := &t.frames[len(t.frames)-1]
	m.sp = fr.savedSP
	m.setReg(fr.retReg, val)
	if m.tt != nil {
		if fallOff {
			m.tt.setTag(fr.retReg, 0)
		} else {
			m.tt.setTag(fr.retReg, m.tt.retTag)
		}
	}
	t.frames = t.frames[:len(t.frames)-1]
}
