package threaded

// Dynamic opcode-pair census over the heavy workloads: run with
//   go test -run TestPairCensus -v -tags census ./internal/threaded
// to decide which pairs are worth hand-fused closures. Kept as a plain
// skipped-by-default test so the measurement that justified the fusion
// set stays reproducible.

import (
	"fmt"
	"os"
	"sort"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/engine"
	"gcsafety/internal/machine"
	"gcsafety/internal/workloads"
)

func TestPairCensus(t *testing.T) {
	if os.Getenv("PAIR_CENSUS") == "" {
		t.Skip("set PAIR_CENSUS=1 to run the opcode-pair census")
	}
	cfg := machine.SPARCstation10()
	counts := map[[2]machine.Op]uint64{}
	singles := map[machine.Op]uint64{}
	for _, name := range []string{"gawk", "gs"} {
		w, _ := workloads.ByName(name)
		file, err := parser.Parse(name+".c", w.Source)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
		if err != nil {
			t.Fatal(err)
		}
		c := engine.NewCore(prog, engine.Options{Config: cfg, Input: w.Input})
		_, err = c.RunWith(nil, func(entry *machine.Func, retReg machine.Reg) error {
			type fr struct {
				fn  *machine.Func
				pc  int
				sp  uint32
				ret machine.Reg
			}
			stack := []fr{{fn: entry, sp: c.SP, ret: retReg}}
			for len(stack) > 0 && !c.Exited {
				f := &stack[len(stack)-1]
				if f.pc >= len(f.fn.Code) {
					c.SP = f.sp
					c.SetReg(f.ret, 0)
					stack = stack[:len(stack)-1]
					continue
				}
				in := &f.fn.Code[f.pc]
				singles[in.Op]++
				if f.pc+1 < len(f.fn.Code) {
					counts[[2]machine.Op{in.Op, f.fn.Code[f.pc+1].Op}]++
				}
				sf := engine.Frame{Fn: f.fn, PC: f.pc + 1, SavedSP: c.SP}
				ret, push, err := c.Step(&sf, in)
				if err != nil {
					return err
				}
				c.Instrs++
				if push != nil {
					f.pc = sf.PC
					stack = append(stack, fr{fn: push.Fn, sp: push.SavedSP, ret: push.RetReg})
					continue
				}
				if ret {
					c.SP = f.sp
					c.SetReg(f.ret, c.PendingRet)
					stack = stack[:len(stack)-1]
					continue
				}
				f.pc = sf.PC
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	type pc struct {
		p [2]machine.Op
		n uint64
	}
	var list []pc
	var total uint64
	for p, n := range counts {
		list = append(list, pc{p, n})
		total += n
	}
	sort.Slice(list, func(i, j int) bool { return list[i].n > list[j].n })
	for i, e := range list {
		if i >= 30 {
			break
		}
		fmt.Printf("%-10v %-10v %10d  %5.2f%%\n", e.p[0], e.p[1], e.n, 100*float64(e.n)/float64(total))
	}
	var sl []pc
	for op, n := range singles {
		sl = append(sl, pc{[2]machine.Op{op, op}, n})
	}
	sort.Slice(sl, func(i, j int) bool { return sl[i].n > sl[j].n })
	fmt.Println("--- singles ---")
	for i, e := range sl {
		if i >= 20 {
			break
		}
		fmt.Printf("%-10v %10d  %5.2f%%\n", e.p[0], e.n, 100*float64(e.n)/float64(total))
	}
}
