// Package threaded is the closure-threaded execution backend: it
// pre-compiles each machine function into a slice of Go closures, one per
// instruction, with operands decoded, branch targets resolved to code
// indices and compare+branch pairs fused — eliminating the per-instruction
// fetch/decode switch of the classic interpreter. The backend supplies
// only the dispatch strategy; the machine state, heap, runtime library,
// checkers and scheduler are the engine-neutral core (internal/engine),
// which is what makes its simulated results — Instrs, Cycles, output, GC
// statistics and every checker outcome — bit-identical to the
// interpreter's by construction. The bit-identical contract is enforced
// by the fuzz matrix's engine twins and the engine-smoke gate.
package threaded

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gcsafety/internal/engine"
	"gcsafety/internal/machine"
)

// Name is the engine registry name of this backend.
const Name = "threaded"

// closure executes one pre-decoded instruction against the shared run
// state and returns the next code index, or a negative control sentinel.
type closure func(st *state) int

// Control sentinels returned by closures instead of a next-pc. Zero is
// reserved (a valid code index and the run loop's "batch exhausted"
// marker), so all sentinels are negative.
const (
	ctlRet   = -1 // current frame returned (Core.PendingRet holds the value)
	ctlCall  = -2 // push st.callee (resume at st.rpc)
	ctlErr   = -3 // st.err holds the fault, at the dispatching pc
	ctlStop  = -4 // the program called exit()
	ctlErrAt = -5 // st.err holds the fault, at st.errpc (a fused second op)
)

// slot is one lowered instruction: the closure, the original opcode (for
// the run loop's one-index cycle charge) and whether the closure is a
// fused compare+branch that may consume the following instruction from
// the batch reservation (see runFast).
type slot struct {
	fn    closure
	op    uint8
	fused bool
}

// loweredFunc is one function's closure code. insns aliases the original
// code for the temporal tracker, which needs the undecoded instruction.
type loweredFunc struct {
	fn    *machine.Func
	slots []slot
	insns []machine.Instr
}

// Program is a lowered machine program. Lowering bakes in nothing
// config-dependent — register-file bounds are checked against the run's
// register file and cycle costs are read from the core's cost table at run
// time — so one lowered Program serves every machine configuration of the
// original.
type Program struct {
	prog   *machine.Program
	funcs  []*loweredFunc
	byFunc map[*machine.Func]*loweredFunc
}

// Machine returns the machine program this lowering was built from. Runs
// started through this Program execute exactly that program object.
func (p *Program) Machine() *machine.Program { return p.prog }

// Lower compiles prog into closure code. It is deterministic and cheap
// (linear in code size); the pipeline caches it as the "lower" stage and
// LowerCached memoizes it per program identity for engine-registry runs.
func Lower(prog *machine.Program) *Program {
	lp := &Program{
		prog:   prog,
		byFunc: make(map[*machine.Func]*loweredFunc, len(prog.Funcs)),
	}
	// Two passes: every function gets its shell first, so direct-call
	// closures can capture the callee's loweredFunc instead of doing a map
	// lookup per call.
	for _, f := range prog.Funcs {
		lf := &loweredFunc{
			fn:    f,
			slots: make([]slot, len(f.Code)),
			insns: f.Code,
		}
		for i := range f.Code {
			lf.slots[i].op = uint8(f.Code[i].Op)
		}
		lp.funcs = append(lp.funcs, lf)
		lp.byFunc[f] = lf
	}
	for _, lf := range lp.funcs {
		lowerFunc(lp, lf)
	}
	return lp
}

// isCmp reports whether op is one of the contiguous compare opcodes.
func isCmp(op machine.Op) bool {
	return op >= machine.CmpEq && op <= machine.CmpGeu
}

var (
	lowerCache sync.Map // *machine.Program -> *Program
	lowerCount atomic.Int32
)

// lowerCacheLimit bounds the memoization map: fuzz runs lower thousands of
// distinct throwaway programs, and without a bound the map would grow for
// the life of the process. Lowering is cheap, so wholesale eviction (and
// the benign race with concurrent inserts) costs at most a re-lower.
const lowerCacheLimit = 512

// LowerCached returns the lowering of prog, memoized by program identity.
// The pipeline's build cache shares program pointers across runs, so warm
// engine-registry runs skip lowering entirely.
func LowerCached(prog *machine.Program) *Program {
	if v, ok := lowerCache.Load(prog); ok {
		return v.(*Program)
	}
	lp := Lower(prog)
	if _, loaded := lowerCache.LoadOrStore(prog, lp); !loaded {
		if lowerCount.Add(1) > lowerCacheLimit {
			lowerCache.Range(func(k, _ any) bool {
				lowerCache.Delete(k)
				return true
			})
			lowerCount.Store(0)
		}
	}
	return lp
}

// rdReg reads register r from the run's register file: one unsigned
// compare covers both NoReg (-1) and a file shorter than the compiled
// program expects, reproducing Core.Reg's "read as 0" semantics.
func rdReg(regs []uint32, r int) uint32 {
	if uint(r) < uint(len(regs)) {
		return regs[r]
	}
	return 0
}

// wrReg writes register r, dropping NoReg and out-of-range writes like
// Core.SetReg.
func wrReg(regs []uint32, r int, v uint32) {
	if uint(r) < uint(len(regs)) {
		regs[r] = v
	}
}

// lowerFunc fills in lf.slots. Branch targets resolve exactly like the
// core's FuncMeta pass: an unknown label resolves to pc 0, matching the
// zero value the interpreter's label-map lookup produces.
func lowerFunc(lp *Program, lf *loweredFunc) {
	f := lf.fn
	labels := map[int32]int{}
	for pc, in := range f.Code {
		if in.Op == machine.Label {
			labels[in.Imm] = pc
		}
	}
	for i := range f.Code {
		in := &f.Code[i]
		next := i + 1
		rd, rs1 := int(in.Rd), int(in.Rs1)
		switch in.Op {
		case machine.Add:
			if in.HasImm {
				imm := uint32(in.Imm)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					wrReg(regs, rd, rdReg(regs, rs1)+imm)
					return next
				}
			} else {
				rs2 := int(in.Rs2)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					wrReg(regs, rd, rdReg(regs, rs1)+rdReg(regs, rs2))
					return next
				}
			}
		case machine.Sub:
			if in.HasImm {
				imm := uint32(in.Imm)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					wrReg(regs, rd, rdReg(regs, rs1)-imm)
					return next
				}
			} else {
				rs2 := int(in.Rs2)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					wrReg(regs, rd, rdReg(regs, rs1)-rdReg(regs, rs2))
					return next
				}
			}
		case machine.Mov:
			if in.HasImm {
				imm := uint32(in.Imm)
				lf.slots[i].fn = func(st *state) int {
					wrReg(st.regs, rd, imm)
					return next
				}
			} else {
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					wrReg(regs, rd, rdReg(regs, rs1))
					return next
				}
			}
		case machine.Ld:
			if in.HasImm {
				imm := uint32(in.Imm)
				lf.slots[i].fn = func(st *state) int {
					v, e := st.c.Read32(rdReg(st.regs, rs1) + imm)
					if e != nil {
						st.err = e
						return ctlErr
					}
					wrReg(st.regs, rd, v)
					return next
				}
			} else {
				rs2 := int(in.Rs2)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					v, e := st.c.Read32(rdReg(regs, rs1) + rdReg(regs, rs2))
					if e != nil {
						st.err = e
						return ctlErr
					}
					wrReg(st.regs, rd, v)
					return next
				}
			}
		case machine.St:
			if in.HasImm {
				imm := uint32(in.Imm)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					if e := st.c.Write32(rdReg(regs, rs1)+imm, rdReg(regs, rd)); e != nil {
						st.err = e
						return ctlErr
					}
					return next
				}
			} else {
				rs2 := int(in.Rs2)
				lf.slots[i].fn = func(st *state) int {
					regs := st.regs
					if e := st.c.Write32(rdReg(regs, rs1)+rdReg(regs, rs2), rdReg(regs, rd)); e != nil {
						st.err = e
						return ctlErr
					}
					return next
				}
			}
		case machine.LdSP:
			// Frame traffic dominates every workload's access mix, and the
			// stack can never alias the heap, so an aligned in-segment access
			// can go straight to the backing bytes: the validator and temporal
			// word tags are keyed off Track/heap paths that are unreachable
			// for stack addresses. Anything else falls back to the checked
			// Read32 (which also produces the misaligned-read fault).
			imm := uint32(in.Imm)
			lf.slots[i].fn = func(st *state) int {
				c := st.c
				a := c.SP + imm
				stk, base := c.StackBytes()
				if off := a - base; a&3 == 0 && off <= uint32(len(stk))-4 {
					s := stk[off : off+4 : off+4]
					wrReg(st.regs, rd, uint32(s[0])|uint32(s[1])<<8|uint32(s[2])<<16|uint32(s[3])<<24)
					return next
				}
				v, e := c.Read32(a)
				if e != nil {
					st.err = e
					return ctlErr
				}
				wrReg(st.regs, rd, v)
				return next
			}
		case machine.StSP, machine.Arg:
			imm := uint32(in.Imm)
			lf.slots[i].fn = func(st *state) int {
				c := st.c
				a := c.SP + imm
				stk, base := c.StackBytes()
				if off := a - base; a&3 == 0 && off <= uint32(len(stk))-4 {
					v := rdReg(st.regs, rd)
					s := stk[off : off+4 : off+4]
					s[0], s[1], s[2], s[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
					return next
				}
				if e := c.Write32(a, rdReg(st.regs, rd)); e != nil {
					st.err = e
					return ctlErr
				}
				return next
			}
		case machine.LeaSP:
			imm := uint32(in.Imm)
			lf.slots[i].fn = func(st *state) int {
				wrReg(st.regs, rd, st.c.SP+imm)
				return next
			}
		case machine.Jmp:
			target := labels[in.Imm]
			lf.slots[i].fn = func(st *state) int { return target }
		case machine.Bz:
			target := labels[in.Imm]
			lf.slots[i].fn = func(st *state) int {
				if rdReg(st.regs, rs1) == 0 {
					return target
				}
				return next
			}
		case machine.Bnz:
			target := labels[in.Imm]
			lf.slots[i].fn = func(st *state) int {
				if rdReg(st.regs, rs1) != 0 {
					return target
				}
				return next
			}
		case machine.CmpEq, machine.CmpNe, machine.CmpLt, machine.CmpLe,
			machine.CmpGt, machine.CmpGe, machine.CmpLtu, machine.CmpLeu,
			machine.CmpGtu, machine.CmpGeu:
			lf.slots[i].fn, lf.slots[i].fused = lowerCmp(in, next, i, f.Code, labels)
		case machine.Nop, machine.Label:
			// No closure at all: the run loops charge the opcode's cost and
			// step over a nil fn inline, so the most frequent opcode of the
			// dynamic mix (labels alone are ~13% of executed instructions)
			// costs one predicted branch instead of an indirect call.
		case machine.LdB:
			lf.slots[i].fn = lowerLd8(in, next, true)
		case machine.LdBu:
			lf.slots[i].fn = lowerLd8(in, next, false)
		case machine.LdH:
			lf.slots[i].fn = lowerLd16(in, next, true)
		case machine.LdHu:
			lf.slots[i].fn = lowerLd16(in, next, false)
		case machine.StB:
			lf.slots[i].fn = lowerSt8(in, next)
		case machine.StH:
			lf.slots[i].fn = lowerSt16(in, next)
		case machine.Mul:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return a * b })
		case machine.And:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return a & b })
		case machine.Or:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return a | b })
		case machine.Xor:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return a ^ b })
		case machine.Shl:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return a << (b & 31) })
		case machine.Shr:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) })
		case machine.Shru:
			lf.slots[i].fn = lowerALU(in, next, func(a, b uint32) uint32 { return a >> (b & 31) })
		case machine.Div:
			lf.slots[i].fn = lowerDiv(in, next, func(a, b uint32) uint32 { return uint32(int32(a) / int32(b)) })
		case machine.Divu:
			lf.slots[i].fn = lowerDiv(in, next, func(a, b uint32) uint32 { return a / b })
		case machine.Rem:
			lf.slots[i].fn = lowerDiv(in, next, func(a, b uint32) uint32 { return uint32(int32(a) % int32(b)) })
		case machine.Remu:
			lf.slots[i].fn = lowerDiv(in, next, func(a, b uint32) uint32 { return a % b })
		case machine.KeepLive:
			// The empty asm: value flows through unchanged; the base operand
			// is merely kept live by its presence here.
			lf.slots[i].fn = func(st *state) int {
				regs := st.regs
				wrReg(regs, rd, rdReg(regs, rs1))
				return next
			}
		case machine.AdjSP:
			imm := uint32(in.Imm)
			lf.slots[i].fn = func(st *state) int {
				c := st.c
				ns := c.SP + imm
				if ns < c.StackLo || ns > c.StackHi {
					st.err = stackOverflow(ns)
					return ctlErr
				}
				c.SP = ns
				return next
			}
		case machine.Ret:
			if in.Rs1 == machine.NoReg {
				lf.slots[i].fn = func(st *state) int {
					st.c.PendingRet = 0
					return ctlRet
				}
			} else {
				lf.slots[i].fn = func(st *state) int {
					st.c.PendingRet = rdReg(st.regs, rs1)
					return ctlRet
				}
			}
		case machine.Call:
			if callee := lp.prog.Funcs[in.Sym]; callee != nil {
				calleeLf := lp.byFunc[callee]
				reg := in.Rd
				lf.slots[i].fn = func(st *state) int {
					st.callee = calleeLf
					st.retReg = reg
					st.rpc = next
					return ctlCall
				}
			} else {
				insn := in
				fnName := f.Name
				reg := in.Rd
				lf.slots[i].fn = func(st *state) int {
					c := st.c
					v, err := c.RuntimeCall(fnName, insn)
					if err != nil {
						st.err = err
						return ctlErr
					}
					c.SetReg(reg, v)
					if tt := c.TT; tt != nil {
						tt.SetTag(reg, tt.RetTag)
					}
					if c.Exited {
						st.rpc = next
						return ctlStop
					}
					return next
				}
			}
		default:
			// Cold opcodes (mul/div, logic, shifts, byte/half memory, CallR)
			// share the core's Step so each has exactly one semantics.
			insn := in
			fnRef := f
			lf.slots[i].fn = func(st *state) int {
				c := st.c
				scratch := engine.Frame{Fn: fnRef, PC: next, SavedSP: c.SP}
				ret, push, err := c.Step(&scratch, insn)
				if err != nil {
					st.err = err
					return ctlErr
				}
				if push != nil {
					st.callee = st.lp.byFunc[push.Fn]
					st.retReg = push.RetReg
					st.rpc = next
					return ctlCall
				}
				if ret {
					return ctlRet
				}
				if c.Exited {
					st.rpc = scratch.PC
					return ctlStop
				}
				return scratch.PC
			}
		}
	}
	fusePairs(lf, labels)
}

// fusePairs is the superinstruction pass: it upgrades the hottest
// instruction pairs (and the byte-load/compare/branch triple) of the
// dynamic opcode mix — measured by the census in pairfreq_test.go — into
// single closures that execute both instructions in one dispatch round.
// Every fused closure follows the reservation protocol lowerCmp
// established: the extra instructions are consumed from st.n (so budget,
// poll and the checked loop's per-instruction bookkeeping all stay exact),
// their cycle costs are charged from the run-time table, and a fault in a
// consumed instruction reports its own pc through ctlErrAt. The second
// slot of each pair keeps its base closure: it is a legal jump target, and
// the checked loop (which reserves nothing) always dispatches it
// separately.
func fusePairs(lf *loweredFunc, labels map[int32]int) {
	code := lf.fn.Code
	for i := 0; i+1 < len(code); i++ {
		if lf.slots[i].fused || lf.slots[i].fn == nil {
			continue
		}
		in, in2 := &code[i], &code[i+1]
		var fn closure
		switch {
		case in.Op == machine.Mov && in2.Op == machine.Jmp:
			fn = fuseMovJmp(in, labels[in2.Imm], i)
		case in.Op == machine.LeaSP && (in2.Op == machine.LdB || in2.Op == machine.LdBu) && in2.Rs1 == in.Rd:
			fn = fuseLeaLd8(in, in2, i)
		case (in.Op == machine.LdB || in.Op == machine.LdBu) && i+2 < len(code) &&
			isCmp(in2.Op) && in2.Rs1 == in.Rd &&
			(code[i+2].Op == machine.Bz || code[i+2].Op == machine.Bnz) && code[i+2].Rs1 == in2.Rd:
			fn = fuseLd8CmpBr(in, in2, &code[i+2], labels, i)
		case in.Op == machine.Ld && in2.Op == machine.Ld:
			fn = fuseLdLd(in, in2, i)
		case in.Op == machine.AdjSP && in2.Op == machine.LdSP:
			fn = fuseAdjLdSP(in, in2, i)
		case (in.Op == machine.StSP || in.Op == machine.Arg) && (in2.Op == machine.StSP || in2.Op == machine.Arg):
			fn = fuseStackStores(in, in2, i)
		case in.Op == machine.Add && in2.Op == machine.Mov:
			fn = fuseAddMov(in, in2, i)
		}
		if fn != nil {
			lf.slots[i].fn = fn
			lf.slots[i].fused = true
		}
	}
}

// fuseMovJmp: a register or immediate move followed by an unconditional
// jump — the common loop back-edge shape "set induction value, jump".
func fuseMovJmp(in *machine.Instr, target, i int) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	hasImm, imm := in.HasImm, uint32(in.Imm)
	next := i + 1
	return func(st *state) int {
		regs := st.regs
		v := imm
		if !hasImm {
			v = rdReg(regs, rs1)
		}
		wrReg(regs, rd, v)
		if st.n == 0 {
			return next
		}
		st.n--
		c := st.c
		c.Cycles += c.Costs[machine.Jmp]
		return target
	}
}

// fuseLeaLd8: take the address of a stack slot, then byte-load through it —
// the inner step of every string loop over a stack buffer. The base is
// re-read through rdReg after the write, so a dropped write (NoReg or a
// short register file) yields exactly what the unfused pair would.
func fuseLeaLd8(in, in2 *machine.Instr, i int) closure {
	rd1, imm1 := int(in.Rd), uint32(in.Imm)
	rd2, rs1b, rs2b := int(in2.Rd), int(in2.Rs1), int(in2.Rs2)
	hasImm2, imm2 := in2.HasImm, uint32(in2.Imm)
	signed := in2.Op == machine.LdB
	op2 := in2.Op
	next1, next2 := i+1, i+2
	return func(st *state) int {
		c := st.c
		regs := st.regs
		wrReg(regs, rd1, c.SP+imm1)
		if st.n == 0 {
			return next1
		}
		st.n--
		c.Cycles += c.Costs[op2]
		off := imm2
		if !hasImm2 {
			off = rdReg(regs, rs2b)
		}
		b, e := c.Read8(rdReg(regs, rs1b) + off)
		if e != nil {
			st.err = e
			st.errpc = next1
			return ctlErrAt
		}
		if signed {
			wrReg(regs, rd2, uint32(int32(int8(b))))
		} else {
			wrReg(regs, rd2, uint32(b))
		}
		return next2
	}
}

// fuseLd8CmpBr: byte load, compare the loaded value, branch on the
// comparison — the "while (*p != c)" scan idiom, three instructions in one
// dispatch. Each consumed instruction takes its own reservation step, so
// the closure degrades to a plain byte load at batch boundaries.
func fuseLd8CmpBr(in, in2, br *machine.Instr, labels map[int32]int, i int) closure {
	rd1, rs1 := int(in.Rd), int(in.Rs1)
	hasImm1, imm1, rs2a := in.HasImm, uint32(in.Imm), int(in.Rs2)
	signed := in.Op == machine.LdB
	eval := cmpEval(in2)
	rd2 := int(in2.Rd)
	cmpOp := in2.Op
	brRs1 := int(br.Rs1)
	brOp := br.Op
	takenOnZero := br.Op == machine.Bz
	target := labels[br.Imm]
	next1, next2, next3 := i+1, i+2, i+3
	return func(st *state) int {
		c := st.c
		regs := st.regs
		off := imm1
		if !hasImm1 {
			off = rdReg(regs, rs2a)
		}
		b, e := c.Read8(rdReg(regs, rs1) + off)
		if e != nil {
			st.err = e
			return ctlErr
		}
		if signed {
			wrReg(regs, rd1, uint32(int32(int8(b))))
		} else {
			wrReg(regs, rd1, uint32(b))
		}
		if st.n == 0 {
			return next1
		}
		st.n--
		c.Cycles += c.Costs[cmpOp]
		wrReg(regs, rd2, eval(regs))
		if st.n == 0 {
			return next2
		}
		st.n--
		c.Cycles += c.Costs[brOp]
		cond := rdReg(regs, brRs1)
		if takenOnZero == (cond == 0) {
			return target
		}
		return next3
	}
}

// fuseLdLd: two word loads back to back (field/field or local/local).
// The second load's operands are read after the first's write, preserving
// any dependency between them.
func fuseLdLd(in, in2 *machine.Instr, i int) closure {
	rd1, rs11 := int(in.Rd), int(in.Rs1)
	h1, imm1, rs21 := in.HasImm, uint32(in.Imm), int(in.Rs2)
	rd2, rs12 := int(in2.Rd), int(in2.Rs1)
	h2, imm2, rs22 := in2.HasImm, uint32(in2.Imm), int(in2.Rs2)
	next1, next2 := i+1, i+2
	return func(st *state) int {
		c := st.c
		regs := st.regs
		o1 := imm1
		if !h1 {
			o1 = rdReg(regs, rs21)
		}
		v, e := c.Read32(rdReg(regs, rs11) + o1)
		if e != nil {
			st.err = e
			return ctlErr
		}
		wrReg(regs, rd1, v)
		if st.n == 0 {
			return next1
		}
		st.n--
		c.Cycles += c.Costs[machine.Ld]
		o2 := imm2
		if !h2 {
			o2 = rdReg(regs, rs22)
		}
		v, e = c.Read32(rdReg(regs, rs12) + o2)
		if e != nil {
			st.err = e
			st.errpc = next1
			return ctlErrAt
		}
		wrReg(regs, rd2, v)
		return next2
	}
}

// fuseAdjLdSP: frame setup followed by a spill reload — the function
// prologue/call-return shape. The load uses the stack fast path against
// the just-adjusted SP.
func fuseAdjLdSP(in, in2 *machine.Instr, i int) closure {
	adj := uint32(in.Imm)
	rd2, imm2 := int(in2.Rd), uint32(in2.Imm)
	next1, next2 := i+1, i+2
	return func(st *state) int {
		c := st.c
		ns := c.SP + adj
		if ns < c.StackLo || ns > c.StackHi {
			st.err = stackOverflow(ns)
			return ctlErr
		}
		c.SP = ns
		if st.n == 0 {
			return next1
		}
		st.n--
		c.Cycles += c.Costs[machine.LdSP]
		a := ns + imm2
		stk, base := c.StackBytes()
		if off := a - base; a&3 == 0 && off <= uint32(len(stk))-4 {
			s := stk[off : off+4 : off+4]
			wrReg(st.regs, rd2, uint32(s[0])|uint32(s[1])<<8|uint32(s[2])<<16|uint32(s[3])<<24)
			return next2
		}
		v, e := c.Read32(a)
		if e != nil {
			st.err = e
			st.errpc = next1
			return ctlErrAt
		}
		wrReg(st.regs, rd2, v)
		return next2
	}
}

// fuseStackStores: two consecutive stack-relative stores (spills or
// outgoing arguments; StSP and Arg share one semantics).
func fuseStackStores(in, in2 *machine.Instr, i int) closure {
	rd1, imm1 := int(in.Rd), uint32(in.Imm)
	rd2, imm2 := int(in2.Rd), uint32(in2.Imm)
	op2 := in2.Op
	next1, next2 := i+1, i+2
	return func(st *state) int {
		c := st.c
		regs := st.regs
		stk, base := c.StackBytes()
		a1 := c.SP + imm1
		if off := a1 - base; a1&3 == 0 && off <= uint32(len(stk))-4 {
			v := rdReg(regs, rd1)
			s := stk[off : off+4 : off+4]
			s[0], s[1], s[2], s[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		} else if e := c.Write32(a1, rdReg(regs, rd1)); e != nil {
			st.err = e
			return ctlErr
		}
		if st.n == 0 {
			return next1
		}
		st.n--
		c.Cycles += c.Costs[op2]
		a2 := c.SP + imm2
		if off := a2 - base; a2&3 == 0 && off <= uint32(len(stk))-4 {
			v := rdReg(regs, rd2)
			s := stk[off : off+4 : off+4]
			s[0], s[1], s[2], s[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			return next2
		}
		if e := c.Write32(a2, rdReg(regs, rd2)); e != nil {
			st.err = e
			st.errpc = next1
			return ctlErrAt
		}
		return next2
	}
}

// fuseAddMov: address arithmetic followed by a move — the copy-and-step
// shape of pointer loops.
func fuseAddMov(in, in2 *machine.Instr, i int) closure {
	rd1, rs11 := int(in.Rd), int(in.Rs1)
	h1, imm1, rs21 := in.HasImm, uint32(in.Imm), int(in.Rs2)
	rd2, rs12 := int(in2.Rd), int(in2.Rs1)
	h2, imm2 := in2.HasImm, uint32(in2.Imm)
	next1, next2 := i+1, i+2
	return func(st *state) int {
		regs := st.regs
		b := imm1
		if !h1 {
			b = rdReg(regs, rs21)
		}
		wrReg(regs, rd1, rdReg(regs, rs11)+b)
		if st.n == 0 {
			return next1
		}
		st.n--
		c := st.c
		c.Cycles += c.Costs[machine.Mov]
		v := imm2
		if !h2 {
			v = rdReg(regs, rs12)
		}
		wrReg(regs, rd2, v)
		return next2
	}
}

// lowerCmp builds a compare closure, fusing the following Bz/Bnz when it
// branches on this compare's destination. The fused closure consumes the
// branch only when the run loop's batch reservation has room (st.n > 0):
// it decrements the reservation (the loop derives instruction counts from
// what remains), charges the branch's cycle cost from the run-time table —
// cycle accounting is a sum, so charging the core directly commutes with
// the loop's batched flush — and jumps, skipping one full dispatch round
// trip. At a batch boundary, or in the checked loop (which reserves
// nothing), it stops after the compare and the branch runs through its own
// closure, so polls, budget checks, GC ticks and temporal tracking all
// observe the branch as a separate instruction exactly when they need to.
// The plain branch closure always remains at its own index: it is a legal
// jump target.
func lowerCmp(in *machine.Instr, next, i int, code []machine.Instr, labels map[int32]int) (closure, bool) {
	eval := cmpEval(in)
	rd := int(in.Rd)
	if i+1 < len(code) {
		br := &code[i+1]
		if (br.Op == machine.Bz || br.Op == machine.Bnz) && br.Rs1 == in.Rd {
			brRs1 := int(br.Rs1)
			brOp := br.Op
			target := labels[br.Imm]
			takenOnZero := br.Op == machine.Bz
			next2 := i + 2
			return func(st *state) int {
				regs := st.regs
				wrReg(regs, rd, eval(regs))
				if st.n == 0 {
					return next
				}
				st.n--
				c := st.c
				c.Cycles += c.Costs[brOp]
				// Re-read through rdReg: when rd is NoReg the compare result
				// was dropped and the branch reads 0, exactly as the unfused
				// pair would.
				cond := rdReg(regs, brRs1)
				if takenOnZero == (cond == 0) {
					return target
				}
				return next2
			}, true
		}
	}
	return func(st *state) int {
		regs := st.regs
		wrReg(regs, rd, eval(regs))
		return next
	}, false
}

// cmpEval builds the compare evaluation for one Cmp* instruction with
// operands pre-decoded; it touches only the register file.
func cmpEval(in *machine.Instr) func(regs []uint32) uint32 {
	rs1 := int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		switch in.Op {
		case machine.CmpEq:
			return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) == imm) }
		case machine.CmpNe:
			return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) != imm) }
		case machine.CmpLt:
			return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) < int32(imm)) }
		case machine.CmpLe:
			return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) <= int32(imm)) }
		case machine.CmpGt:
			return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) > int32(imm)) }
		case machine.CmpGe:
			return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) >= int32(imm)) }
		case machine.CmpLtu:
			return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) < imm) }
		case machine.CmpLeu:
			return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) <= imm) }
		case machine.CmpGtu:
			return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) > imm) }
		default: // machine.CmpGeu
			return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) >= imm) }
		}
	}
	rs2 := int(in.Rs2)
	switch in.Op {
	case machine.CmpEq:
		return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) == rdReg(regs, rs2)) }
	case machine.CmpNe:
		return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) != rdReg(regs, rs2)) }
	case machine.CmpLt:
		return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) < int32(rdReg(regs, rs2))) }
	case machine.CmpLe:
		return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) <= int32(rdReg(regs, rs2))) }
	case machine.CmpGt:
		return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) > int32(rdReg(regs, rs2))) }
	case machine.CmpGe:
		return func(regs []uint32) uint32 { return b2u(int32(rdReg(regs, rs1)) >= int32(rdReg(regs, rs2))) }
	case machine.CmpLtu:
		return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) < rdReg(regs, rs2)) }
	case machine.CmpLeu:
		return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) <= rdReg(regs, rs2)) }
	case machine.CmpGtu:
		return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) > rdReg(regs, rs2)) }
	default: // machine.CmpGeu
		return func(regs []uint32) uint32 { return b2u(rdReg(regs, rs1) >= rdReg(regs, rs2)) }
	}
}

// lowerALU builds the closure for a pure two-source ALU opcode; op is a
// tiny leaf function the compiler can inline into the closure body.
func lowerALU(in *machine.Instr, next int, op func(a, b uint32) uint32) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		return func(st *state) int {
			regs := st.regs
			wrReg(regs, rd, op(rdReg(regs, rs1), imm))
			return next
		}
	}
	rs2 := int(in.Rs2)
	return func(st *state) int {
		regs := st.regs
		wrReg(regs, rd, op(rdReg(regs, rs1), rdReg(regs, rs2)))
		return next
	}
}

// lowerDiv is lowerALU for the divide family, with Step's check-then-
// compute order for the division-by-zero fault. Go itself defines the
// MinInt32/-1 overflow quotient (x/-1 == x), so op needs no further
// guards to match Step bit for bit.
func lowerDiv(in *machine.Instr, next int, op func(a, b uint32) uint32) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		return func(st *state) int {
			regs := st.regs
			if imm == 0 {
				st.err = fmt.Errorf("division by zero")
				return ctlErr
			}
			wrReg(regs, rd, op(rdReg(regs, rs1), imm))
			return next
		}
	}
	rs2 := int(in.Rs2)
	return func(st *state) int {
		regs := st.regs
		d := rdReg(regs, rs2)
		if d == 0 {
			st.err = fmt.Errorf("division by zero")
			return ctlErr
		}
		wrReg(regs, rd, op(rdReg(regs, rs1), d))
		return next
	}
}

// lowerLd8 dispatches the byte loads through the core's shared sub-word
// accessor, so the threaded engine and Step fault identically.
func lowerLd8(in *machine.Instr, next int, signed bool) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		return func(st *state) int {
			regs := st.regs
			b, e := st.c.Read8(rdReg(regs, rs1) + imm)
			if e != nil {
				st.err = e
				return ctlErr
			}
			if signed {
				wrReg(regs, rd, uint32(int32(int8(b))))
			} else {
				wrReg(regs, rd, uint32(b))
			}
			return next
		}
	}
	rs2 := int(in.Rs2)
	return func(st *state) int {
		regs := st.regs
		b, e := st.c.Read8(rdReg(regs, rs1) + rdReg(regs, rs2))
		if e != nil {
			st.err = e
			return ctlErr
		}
		if signed {
			wrReg(regs, rd, uint32(int32(int8(b))))
		} else {
			wrReg(regs, rd, uint32(b))
		}
		return next
	}
}

func lowerLd16(in *machine.Instr, next int, signed bool) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		return func(st *state) int {
			regs := st.regs
			h, e := st.c.Read16(rdReg(regs, rs1) + imm)
			if e != nil {
				st.err = e
				return ctlErr
			}
			if signed {
				wrReg(regs, rd, uint32(int32(int16(h))))
			} else {
				wrReg(regs, rd, uint32(h))
			}
			return next
		}
	}
	rs2 := int(in.Rs2)
	return func(st *state) int {
		regs := st.regs
		h, e := st.c.Read16(rdReg(regs, rs1) + rdReg(regs, rs2))
		if e != nil {
			st.err = e
			return ctlErr
		}
		if signed {
			wrReg(regs, rd, uint32(int32(int16(h))))
		} else {
			wrReg(regs, rd, uint32(h))
		}
		return next
	}
}

func lowerSt8(in *machine.Instr, next int) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		return func(st *state) int {
			regs := st.regs
			if e := st.c.Write8(rdReg(regs, rs1)+imm, byte(rdReg(regs, rd))); e != nil {
				st.err = e
				return ctlErr
			}
			return next
		}
	}
	rs2 := int(in.Rs2)
	return func(st *state) int {
		regs := st.regs
		if e := st.c.Write8(rdReg(regs, rs1)+rdReg(regs, rs2), byte(rdReg(regs, rd))); e != nil {
			st.err = e
			return ctlErr
		}
		return next
	}
}

func lowerSt16(in *machine.Instr, next int) closure {
	rd, rs1 := int(in.Rd), int(in.Rs1)
	if in.HasImm {
		imm := uint32(in.Imm)
		return func(st *state) int {
			regs := st.regs
			if e := st.c.Write16(rdReg(regs, rs1)+imm, uint16(rdReg(regs, rd))); e != nil {
				st.err = e
				return ctlErr
			}
			return next
		}
	}
	rs2 := int(in.Rs2)
	return func(st *state) int {
		regs := st.regs
		if e := st.c.Write16(rdReg(regs, rs1)+rdReg(regs, rs2), uint16(rdReg(regs, rd))); e != nil {
			st.err = e
			return ctlErr
		}
		return next
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// threadedEngine adapts the backend to the engine registry; runs reached
// through the registry (rather than a pipeline-lowered Program) memoize
// lowering per program identity.
type threadedEngine struct{}

func (threadedEngine) Name() string { return Name }

func (threadedEngine) Run(ctx context.Context, prog *machine.Program, opts engine.Options) (*engine.Result, error) {
	return Run(ctx, LowerCached(prog), opts)
}

func init() { engine.Register(threadedEngine{}) }
