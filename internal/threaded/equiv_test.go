package threaded_test

import (
	"fmt"
	"reflect"
	"testing"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/engine"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
	"gcsafety/internal/workloads"

	// Importing interp registers both engines.
	_ "gcsafety/internal/interp"
)

// The engine contract: for any program, any machine configuration and any
// execution regime, the closure-threaded backend must produce results
// bit-identical to the switch-dispatch interpreter — output bytes, exit
// code, instruction and cycle counts, GC statistics, and, on failing runs,
// the same fault at the same pc with the same message. These tests drive
// the contract over the benchmark suite and the full hazard catalogue
// under both benign and adversarial collection schedules.

type buildTreatment struct {
	name     string
	annotate bool
	mode     gcsafe.Mode
	optimize bool
	post     bool
}

var buildTreatments = []buildTreatment{
	{name: "debug"},
	{name: "opt", optimize: true},
	{name: "opt-safe", optimize: true, annotate: true, mode: gcsafe.ModeSafe},
	{name: "opt-safe-post", optimize: true, annotate: true, mode: gcsafe.ModeSafe, post: true},
	{name: "checked", annotate: true, mode: gcsafe.ModeChecked},
}

func compile(t *testing.T, src string, tr buildTreatment) *machine.Program {
	t.Helper()
	cfg := machine.SPARCstation10()
	file, err := parser.Parse("equiv.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tr.annotate {
		if _, err := gcsafe.Annotate(file, gcsafe.Options{Mode: tr.mode}); err != nil {
			t.Fatalf("annotate: %v", err)
		}
	}
	prog, err := codegen.Compile(file, codegen.Options{Optimize: tr.optimize, Machine: cfg})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if tr.post {
		peephole.Optimize(prog, cfg)
	}
	return prog
}

// assertEngineEquivalence runs prog under both engines and fails unless
// every observable is identical.
func assertEngineEquivalence(t *testing.T, prog *machine.Program, opts engine.Options) {
	t.Helper()
	opts.Engine = "interp"
	want, wantErr := engine.Run(nil, prog, opts)
	opts.Engine = "threaded"
	got, gotErr := engine.Run(nil, prog, opts)
	if (wantErr == nil) != (gotErr == nil) ||
		(wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("engines disagree on outcome:\n  interp:   %v\n  threaded: %v", wantErr, gotErr)
	}
	if want.Output != got.Output {
		t.Errorf("output diverges:\n  interp:   %q\n  threaded: %q", want.Output, got.Output)
	}
	if want.ExitCode != got.ExitCode {
		t.Errorf("exit code diverges: interp %d, threaded %d", want.ExitCode, got.ExitCode)
	}
	if want.Instrs != got.Instrs || want.Cycles != got.Cycles {
		t.Errorf("accounting diverges: interp instrs=%d cycles=%d, threaded instrs=%d cycles=%d",
			want.Instrs, want.Cycles, got.Instrs, got.Cycles)
	}
	if !reflect.DeepEqual(want.GCStats, got.GCStats) {
		t.Errorf("GC statistics diverge:\n  interp:   %+v\n  threaded: %+v", want.GCStats, got.GCStats)
	}
	if (want.Snapshot == nil) != (got.Snapshot == nil) {
		t.Fatalf("snapshot presence diverges: interp %v, threaded %v",
			want.Snapshot != nil, got.Snapshot != nil)
	}
	if want.Snapshot != nil {
		if want.Snapshot.Trigger != got.Snapshot.Trigger ||
			want.Snapshot.Reason != got.Snapshot.Reason ||
			want.Snapshot.FaultAddr != got.Snapshot.FaultAddr {
			t.Errorf("snapshot classification diverges:\n  interp:   trigger=%q addr=%#x reason=%q\n  threaded: trigger=%q addr=%#x reason=%q",
				want.Snapshot.Trigger, want.Snapshot.FaultAddr, want.Snapshot.Reason,
				got.Snapshot.Trigger, got.Snapshot.FaultAddr, got.Snapshot.Reason)
		}
	}
}

// execRegime is one execution configuration the equivalence grid covers.
type execRegime struct {
	name string
	opts engine.Options
}

func execRegimes(w workloads.Workload) []execRegime {
	base := engine.Options{
		Config: machine.SPARCstation10(),
		Input:  w.Input,
	}
	benign := base
	validated := base
	validated.Validate = true
	async := base
	async.Validate = true
	async.GCEveryInstrs = 997
	adversarial := base
	adversarial.Validate = true
	adversarial.CollectAtEveryAlloc = true
	temporal := base
	temporal.Temporal = true
	temporal.HeapProfile = true
	regimes := []execRegime{
		{"benign", benign},
		{"validated", validated},
		{"async", async},
		{"adversarial", adversarial},
		{"temporal", temporal},
	}
	if w.Threads > 1 {
		mt := base
		mt.Threads = w.Threads
		mt.Validate = true
		mt.CollectAtSwitch = true
		regimes = append(regimes, execRegime{"mt-adversarial", mt})
	}
	return regimes
}

// TestEngineEquivalenceHazards drives every hazard workload through the
// treatment × regime grid: the engines must agree on every violation
// classification (message for message, fault address for fault address)
// as well as on every clean run.
func TestEngineEquivalenceHazards(t *testing.T) {
	for _, w := range workloads.Hazards() {
		for _, tr := range buildTreatments {
			prog := compile(t, w.Source, tr)
			for _, re := range execRegimes(w) {
				t.Run(fmt.Sprintf("%s/%s/%s", w.Name, tr.name, re.name), func(t *testing.T) {
					assertEngineEquivalence(t, prog, re.opts)
				})
			}
		}
	}
}

// TestEngineEquivalenceWorkloads covers the Zorn benchmark suite under the
// benign and asynchronous-validated regimes (the adversarial schedules are
// covered per-hazard above and by the fuzz matrix's engine twins; the full
// suite under collect-at-every-alloc is minutes of wall clock).
func TestEngineEquivalenceWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		for _, tr := range []buildTreatment{
			{name: "opt", optimize: true},
			{name: "opt-safe-post", optimize: true, annotate: true, mode: gcsafe.ModeSafe, post: true},
		} {
			prog := compile(t, w.Source, tr)
			for _, re := range execRegimes(w)[:3] { // benign, validated, async
				t.Run(fmt.Sprintf("%s/%s/%s", w.Name, tr.name, re.name), func(t *testing.T) {
					assertEngineEquivalence(t, prog, re.opts)
				})
			}
		}
	}
}
