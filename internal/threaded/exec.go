package threaded

import (
	"context"
	"fmt"

	"gcsafety/internal/engine"
	"gcsafety/internal/machine"
)

// state is the run loop's shared scratch, threaded through every closure.
// regs aliases the core's register file (single-thread runs never re-aim
// it, and concurrent runs bypass closures entirely); n is the batch
// reservation handed to fused closures (see runFast) — the checked loop
// leaves it 0, which keeps fusion inert there.
type state struct {
	c    *engine.Core
	lp   *Program
	regs []uint32
	// n counts instructions still covered by the current batch's budget and
	// poll reservation; only fused closures consume from it.
	n uint64
	// rpc is the resume pc the current frame continues at after a ctlCall
	// or ctlStop.
	rpc int
	// errpc is the faulting pc reported with ctlErrAt: a fused closure's
	// consumed instruction faulted at an index past the dispatching one.
	errpc  int
	err    error
	callee *loweredFunc
	retReg machine.Reg
}

// tframe is one activation in the threaded engine's frame stack.
type tframe struct {
	lf      *loweredFunc
	pc      int
	savedSP uint32
	retReg  machine.Reg
}

func stackOverflow(ns uint32) error {
	return fmt.Errorf("stack overflow (sp=%#x)", ns)
}

// Run executes the lowered program under ctx. The core is built from the
// Program's own machine program, so the closure code and the program it
// was lowered from can never disagree. Concurrent runs (Threads > 1) are
// scheduled by the core's shared quantum scheduler, identically for every
// engine.
func Run(ctx context.Context, lp *Program, opts engine.Options) (*engine.Result, error) {
	c := engine.NewCore(lp.prog, opts)
	return c.RunWith(ctx, func(entry *machine.Func, retReg machine.Reg) error {
		return call(c, lp, lp.byFunc[entry], retReg)
	})
}

// call runs entry to completion (including nested calls). The checked
// loop carries the per-instruction bookkeeping the fast loop hoists to
// batch boundaries; both produce bit-identical accounting, but only the
// fast loop may batch, and batching is only sound when nothing observes
// individual instructions between safe points — which is exactly when the
// asynchronous-GC tick and the temporal tracker are off.
func call(c *engine.Core, lp *Program, entry *loweredFunc, retReg machine.Reg) error {
	if c.Opts.GCEveryInstrs > 0 || c.TT != nil {
		return runChecked(c, lp, entry, retReg)
	}
	return runFast(c, lp, entry, retReg)
}

// runFast is the batched dispatch loop. Per instruction it pays one
// bounds check, a register-held batch countdown, a one-index cycle charge
// into a local accumulator and one indirect call — no fetch/decode switch
// and no memory-resident bookkeeping. The instruction budget and the
// context poll are checked once per batch: a batch never reserves more
// instructions than remain before the next poll or the budget limit, so
// hoisting the checks is exactly equivalent to the interpreter's
// per-instruction schedule, and the deferred Instrs/Cycles flush is a
// reordering of commutative additions that no code can observe mid-batch
// (the core is only read at safe points, which are batch boundaries).
// pollCd reproduces "poll when Instrs%PollInterval == 0" the same way the
// interpreter's countdown does.
func runFast(c *engine.Core, lp *Program, entry *loweredFunc, retReg machine.Reg) error {
	stack := make([]tframe, 1, 16)
	stack[0] = tframe{lf: entry, pc: 0, savedSP: c.SP, retReg: retReg}
	st := &state{c: c, lp: lp, regs: c.Regs}
	// ctab widens the cost table to the full byte range: indexing it with
	// an opcode byte needs no bounds check.
	var ctab [256]uint64
	copy(ctab[:], c.Costs[:])
	var (
		maxInstrs = c.Opts.MaxInstrs
		pollCd    = c.Instrs % engine.PollInterval
	)
	if pollCd != 0 {
		pollCd = engine.PollInterval - pollCd
	}
	for len(stack) > 0 && !c.Exited {
		fr := &stack[len(stack)-1]
		lf := fr.lf
		slots := lf.slots
		clen := len(slots)
		pc := fr.pc
	frame:
		for {
			if pc >= clen {
				// fall off the end: return 0 (no instruction is consumed)
				c.SP = fr.savedSP
				c.SetReg(fr.retReg, 0)
				stack = stack[:len(stack)-1]
				break frame
			}
			if c.Instrs >= maxInstrs {
				fr.pc = pc
				return &engine.FaultError{Fn: lf.fn.Name, PC: pc,
					Err: fmt.Errorf("%w (%d)", engine.ErrInstrLimit, maxInstrs)}
			}
			if pollCd == 0 {
				if err := c.Poll(); err != nil {
					fr.pc = pc
					return &engine.FaultError{Fn: lf.fn.Name, PC: pc, Err: err}
				}
				pollCd = engine.PollInterval
			}
			n := pollCd
			if rem := maxInstrs - c.Instrs; rem < n {
				n = rem
			}
			k := n
			var cyc uint64
			ctl := 0
			for k > 0 && pc < clen {
				k--
				s := &slots[pc]
				cyc += ctab[s.op]
				fn := s.fn
				if fn == nil {
					// Label/Nop: charged and counted, nothing to execute.
					pc++
					continue
				}
				var npc int
				if s.fused {
					// Hand the reservation to the fused closure; it may
					// consume the following instruction(s) from it.
					st.n = k
					npc = fn(st)
					k = st.n
				} else {
					npc = fn(st)
				}
				if npc >= 0 {
					pc = npc
					continue
				}
				ctl = npc
				break
			}
			// One flush per batch: the loop's additions commute with the
			// direct charges runtime calls and fused branches make.
			c.Instrs += n - k
			c.Cycles += cyc
			pollCd -= n - k
			switch ctl {
			case 0:
				// Batch exhausted (or the frame ran off its end): loop to the
				// boundary checks.
			case ctlRet:
				c.SP = fr.savedSP
				c.SetReg(fr.retReg, c.PendingRet)
				stack = stack[:len(stack)-1]
				break frame
			case ctlCall:
				fr.pc = st.rpc
				sp := c.SP
				stack = append(stack, tframe{lf: st.callee, pc: 0, savedSP: sp, retReg: st.retReg})
				break frame
			case ctlStop:
				fr.pc = st.rpc
				break frame
			case ctlErr:
				fr.pc = pc
				// pc still indexes the faulting instruction: the loop only
				// advances it when a closure completes.
				return &engine.FaultError{Fn: lf.fn.Name, PC: pc, Err: st.err}
			case ctlErrAt:
				// A fused closure's consumed instruction faulted: it recorded
				// its own pc.
				fr.pc = st.errpc
				return &engine.FaultError{Fn: lf.fn.Name, PC: st.errpc, Err: st.err}
			}
		}
	}
	return nil
}

// runChecked is the per-instruction loop for the regimes where something
// observes every instruction: the asynchronous-GC tick may collect between
// any two instructions, and the temporal tracker checks and propagates
// shadow tags before each opcode. Bookkeeping order is the interpreter's
// exactly: budget, poll, countdown, Instrs, Cycles, GC tick, Track,
// dispatch. st.n stays 0, so fused compare closures stop after the
// compare and every branch runs as its own instruction.
func runChecked(c *engine.Core, lp *Program, entry *loweredFunc, retReg machine.Reg) error {
	stack := make([]tframe, 1, 16)
	stack[0] = tframe{lf: entry, pc: 0, savedSP: c.SP, retReg: retReg}
	st := &state{c: c, lp: lp, regs: c.Regs}
	var (
		maxInstrs = c.Opts.MaxInstrs
		gcEvery   = c.Opts.GCEveryInstrs
		costs     = &c.Costs
		tt        = c.TT
		pollCd    = c.Instrs % engine.PollInterval
	)
	if pollCd != 0 {
		pollCd = engine.PollInterval - pollCd
	}
	for len(stack) > 0 && !c.Exited {
		fr := &stack[len(stack)-1]
		lf := fr.lf
		slots := lf.slots
		clen := len(slots)
		pc := fr.pc
	frame:
		for {
			if pc >= clen {
				c.SP = fr.savedSP
				c.SetReg(fr.retReg, 0)
				if tt != nil {
					tt.SetTag(fr.retReg, 0)
				}
				stack = stack[:len(stack)-1]
				break frame
			}
			if c.Instrs >= maxInstrs {
				fr.pc = pc
				return &engine.FaultError{Fn: lf.fn.Name, PC: pc,
					Err: fmt.Errorf("%w (%d)", engine.ErrInstrLimit, maxInstrs)}
			}
			if pollCd == 0 {
				if err := c.Poll(); err != nil {
					fr.pc = pc
					return &engine.FaultError{Fn: lf.fn.Name, PC: pc, Err: err}
				}
				pollCd = engine.PollInterval
			}
			pollCd--
			c.Instrs++
			c.Cycles += costs[lf.slots[pc].op]
			if gcEvery > 0 {
				c.SinceGC++
				if c.SinceGC >= gcEvery {
					c.SinceGC = 0
					c.Heap().Collect()
				}
			}
			if tt != nil {
				if err := c.Track(&lf.insns[pc]); err != nil {
					fr.pc = pc
					return &engine.FaultError{Fn: lf.fn.Name, PC: pc, Err: err}
				}
			}
			fn := slots[pc].fn
			if fn == nil {
				// Label/Nop: bookkeeping (including temporal tracking) has
				// run; there is nothing to execute.
				pc++
				continue
			}
			npc := fn(st)
			if npc >= 0 {
				pc = npc
				continue
			}
			switch npc {
			case ctlRet:
				c.SP = fr.savedSP
				c.SetReg(fr.retReg, c.PendingRet)
				if tt != nil {
					tt.SetTag(fr.retReg, tt.RetTag)
				}
				stack = stack[:len(stack)-1]
				break frame
			case ctlCall:
				fr.pc = st.rpc
				sp := c.SP
				stack = append(stack, tframe{lf: st.callee, pc: 0, savedSP: sp, retReg: st.retReg})
				break frame
			case ctlStop:
				fr.pc = st.rpc
				break frame
			case ctlErr:
				fr.pc = pc
				return &engine.FaultError{Fn: lf.fn.Name, PC: pc, Err: st.err}
			case ctlErrAt:
				fr.pc = st.errpc
				return &engine.FaultError{Fn: lf.fn.Name, PC: st.errpc, Err: st.err}
			}
		}
	}
	return nil
}
