package threaded_test

import (
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

// TestThreadedDoesNotImportInterp pins the engine seam's layering rule at
// the source level: the closure-threaded backend builds on the
// engine-neutral core (internal/engine) only. The interpreter's dispatch
// internals live in internal/interp/internal/dispatch, which the Go
// toolchain already makes unimportable from here; this test additionally
// rejects any import of the interp package itself, so the two engines can
// only share behavior by moving it into the core — never by one reaching
// into the other.
func TestThreadedDoesNotImportInterp(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "gcsafety/internal/interp" || strings.HasPrefix(path, "gcsafety/internal/interp/") {
				t.Errorf("%s imports %s: the threaded backend must depend on internal/engine only", name, path)
			}
		}
	}
}
