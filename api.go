// Package gcsafety is a from-scratch reproduction of "Simple
// Garbage-Collector-Safety" (Hans-J. Boehm, PLDI 1996): a C front end, the
// KEEP_LIVE GC-safety/pointer-checking annotator that is the paper's
// central contribution, a conservative collector, an optimizing compiler
// for a simulated RISC machine that exhibits the paper's pointer-disguising
// hazard, a peephole postprocessor, and the measurement harness that
// regenerates the paper's tables.
//
// The root package offers the whole pipeline behind a small API:
//
//	out, _ := gcsafety.Annotate("x.c", src, gcsafety.Safe())   // C-to-C preprocessor
//	res, _ := gcsafety.Run("x.c", src, gcsafety.Pipeline{...}) // compile + execute
//
// The layers are available individually under internal/ for the examples,
// benchmarks and tests; see DESIGN.md for the package inventory.
package gcsafety

import (
	"context"
	"errors"
	"fmt"

	"gcsafety/internal/artifact"
	"gcsafety/internal/cc/ast"
	"gcsafety/internal/cc/parser"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/threaded"
)

// Mode selects the annotation mode of the preprocessor.
type Mode = gcsafe.Mode

// Annotation modes.
const (
	ModeSafe     = gcsafe.ModeSafe
	ModeChecked  = gcsafe.ModeChecked
	ModeTemporal = gcsafe.ModeTemporal
)

// AnnotateOptions re-exports the annotator configuration.
type AnnotateOptions = gcsafe.Options

// Safe returns the default production GC-safety options (the paper's
// optimizations (1) and (2) enabled).
func Safe() AnnotateOptions { return AnnotateOptions{Mode: ModeSafe} }

// Checked returns the debugging-mode options: every pointer-arithmetic
// result is validated at run time through GC_same_obj.
func Checked() AnnotateOptions { return AnnotateOptions{Mode: ModeChecked} }

// Temporal returns the temporal-checking options: checked-mode pointer
// validation plus free→GC_free rewriting, so that (with the interpreter's
// Temporal option on) use-after-free and double-free become deterministic
// checker violations instead of silent corruption.
func Temporal() AnnotateOptions { return AnnotateOptions{Mode: ModeTemporal} }

// SafeElided returns Safe() with the liveness-based elision analysis on:
// KEEP_LIVE annotations whose base variable is provably live across the
// expression are dropped (see internal/liveness).
func SafeElided() AnnotateOptions { return AnnotateOptions{Mode: ModeSafe, Elide: true} }

// CheckedElided returns Checked() with elision on: GC_same_obj checks that
// provably cannot fire — constant-offset accesses within allocations of
// statically known size, with the base variable live — are dropped. Every
// check that can fire is kept, so detection power is unchanged.
func CheckedElided() AnnotateOptions { return AnnotateOptions{Mode: ModeChecked, Elide: true} }

// defaultRunner executes every package-level Annotate/Build/Run call on
// the stage-graph pipeline (internal/pipeline) over a shared bounded
// artifact cache, so repeated builds of the same source — or of
// treatments sharing a front end — reuse per-stage artifacts. Results
// may therefore be shared between calls: treat returned programs, ASTs
// and annotation results as immutable.
var defaultRunner = pipeline.NewRunner(artifact.New(64 << 20))

// Annotate runs the C-to-C preprocessor and returns the rewritten source
// plus diagnostics.
func Annotate(name, src string, opts AnnotateOptions) (*gcsafe.Result, error) {
	return AnnotateContext(context.Background(), name, src, opts)
}

// AnnotateContext is Annotate under a context: a canceled or expired ctx
// aborts before the (CPU-bound, but brief) annotation pass starts.
func AnnotateContext(ctx context.Context, name, src string, opts AnnotateOptions) (*gcsafe.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("annotate: %w", err)
	}
	res, _, err := defaultRunner.Annotate(ctx, name, src, opts)
	if err != nil {
		// Surface the parser's or annotator's own error, exactly as the
		// pre-pipeline path did.
		var se *pipeline.StageError
		if errors.As(err, &se) {
			return nil, se.Err
		}
		return nil, err
	}
	return res, nil
}

// Pipeline configures a full compile-and-execute run.
type Pipeline struct {
	// Annotate enables the GC-safety preprocessor pass.
	Annotate bool
	// AnnotateOptions configures the pass when enabled.
	AnnotateOptions AnnotateOptions
	// Optimize selects the -O compiler pipeline ( -g otherwise).
	Optimize bool
	// Postprocess runs the paper's peephole postprocessor over the
	// compiled code.
	Postprocess bool
	// Machine is the target configuration (default SPARCstation 10).
	Machine *machine.Config
	// Exec configures execution (entry point, GC policy, input...).
	// Exec.Engine selects the backend: "interp" (default) or "threaded";
	// threaded builds additionally run the cached Lower pipeline stage.
	Exec interp.Options
}

// BuildReport re-exports the pipeline's per-build stage report: which
// stages ran, which were served from the artifact cache, and how long
// each took.
type BuildReport = pipeline.BuildReport

// StageReport is one stage execution within a BuildReport.
type StageReport = pipeline.StageReport

// Result of a full pipeline run.
type Result struct {
	Exec     *interp.Result
	Program  *machine.Program
	Annotate *gcsafe.Result // nil when annotation was disabled
	Report   *BuildReport   // the build's stage-graph walk
}

// Build parses, optionally annotates, compiles and optionally postprocesses
// a translation unit.
func Build(name, src string, p Pipeline) (*machine.Program, *gcsafe.Result, error) {
	return BuildContext(context.Background(), name, src, p)
}

// BuildContext is Build under a context, checked between pipeline stages:
// a canceled or expired ctx aborts before the next stage begins.
func BuildContext(ctx context.Context, name, src string, p Pipeline) (*machine.Program, *gcsafe.Result, error) {
	prog, ares, _, err := BuildWithReportContext(ctx, name, src, p)
	return prog, ares, err
}

// BuildWithReport is Build plus the stage report of the walk that
// produced the program.
func BuildWithReport(name, src string, p Pipeline) (*machine.Program, *gcsafe.Result, *BuildReport, error) {
	return BuildWithReportContext(context.Background(), name, src, p)
}

// BuildWithReportContext runs the staged build. The returned program and
// annotation result may be shared with other builds via the artifact
// cache and must not be mutated.
func BuildWithReportContext(ctx context.Context, name, src string, p Pipeline) (*machine.Program, *gcsafe.Result, *BuildReport, error) {
	res, err := buildPipeline(ctx, name, src, p)
	if err != nil {
		return nil, nil, nil, err
	}
	return res.Prog, res.Annotate, res.Report, nil
}

// buildPipeline is the shared staged-build core: it resolves the machine
// default, threads the execution engine into the stage graph (so threaded
// runs get a cached Lower artifact) and normalizes stage errors.
func buildPipeline(ctx context.Context, name, src string, p Pipeline) (*pipeline.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	cfg := machine.SPARCstation10()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	res, err := defaultRunner.Build(ctx, name, src, pipeline.Options{
		Annotate:        p.Annotate,
		AnnotateOptions: p.AnnotateOptions,
		Optimize:        p.Optimize,
		Post:            p.Postprocess,
		Machine:         cfg,
		Engine:          p.Exec.Engine,
	})
	if err != nil {
		return nil, wrapBuildError(err)
	}
	return res, nil
}

// wrapBuildError converts a pipeline StageError into the phase-prefixed
// errors this API has always returned: "parse:", "annotate:", "compile:"
// for stage failures, "build:" for context expiry between stages.
func wrapBuildError(err error) error {
	var se *pipeline.StageError
	if !errors.As(err, &se) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("build: %w", se.Err)
	}
	switch se.Stage {
	case pipeline.StageLex, pipeline.StageParse, pipeline.StageTypecheck:
		return fmt.Errorf("parse: %w", se.Err)
	case pipeline.StageAnnotate:
		return fmt.Errorf("annotate: %w", se.Err)
	default:
		return fmt.Errorf("compile: %w", se.Err)
	}
}

// Run executes the full pipeline on one C translation unit.
func Run(name, src string, p Pipeline) (*Result, error) {
	return RunContext(context.Background(), name, src, p)
}

// RunContext is Run under a context: the build stages observe ctx at their
// boundaries and the interpreter polls it between instructions, so a
// deadline or cancellation bounds the whole pipeline — the robustness
// contract the gcsafed daemon depends on to survive adversarial inputs.
func RunContext(ctx context.Context, name, src string, p Pipeline) (*Result, error) {
	bres, err := buildPipeline(ctx, name, src, p)
	if err != nil {
		return nil, err
	}
	cfg := machine.SPARCstation10()
	if p.Machine != nil {
		cfg = *p.Machine
	}
	ex := p.Exec
	ex.Config = cfg
	var res *interp.Result
	if bres.Lowered != nil {
		// The build already lowered the program for the threaded engine;
		// execute the cached artifact instead of re-lowering through the
		// engine registry.
		res, err = threaded.Run(ctx, bres.Lowered, ex)
	} else {
		res, err = interp.RunContext(ctx, bres.Prog, ex)
	}
	return &Result{Exec: res, Program: bres.Prog, Annotate: bres.Annotate, Report: bres.Report}, err
}

// PipelineStats snapshots the default build pipeline's per-stage
// counters: calls, cache hits/misses, errors, cumulative duration.
func PipelineStats() []pipeline.StageStat {
	return defaultRunner.Stats()
}

// Parse exposes the front end for tools that want the AST.
func Parse(name, src string) (*ast.File, error) { return parser.Parse(name, src) }

// GeneratedProgram is a random C program paired with the output its
// reference model predicts (see internal/fuzz).
type GeneratedProgram = fuzz.Program

// MatrixOptions configures a differential treatment-matrix run.
type MatrixOptions = fuzz.MatrixOptions

// MatrixResult reports one program's runs across the treatment matrix.
type MatrixResult = fuzz.MatrixResult

// GenerateProgram builds one random well-defined C program from a
// deterministic seed, together with the model of its output. steps is the
// number of operations in the program body.
func GenerateProgram(seed int64, steps int) *GeneratedProgram {
	return fuzz.Generate(seed, steps)
}

// RunMatrix compiles and executes a generated program under the full
// differential treatment matrix — {unannotated, safe, checked} x {-g, -O} x
// {peephole on/off} per machine, plus adversarial-collection runs — and
// classifies every disagreement with the model. Only the unannotated
// optimized build (the configuration the paper shows is not GC-safe) may
// fail; all other treatments appear in MatrixResult.Violations if they do.
func RunMatrix(p *GeneratedProgram, opt MatrixOptions) (*MatrixResult, error) {
	return fuzz.RunMatrix(p, opt)
}
