package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test: build the command and run it end to end on a small program.

func buildCCRun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ccrun")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const ccrunProg = `int main() {
    print_int(6 * 9);
    print_str("\n");
    return 0;
}
`

func TestCCRunSmoke(t *testing.T) {
	bin := buildCCRun(t)
	src := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(src, []byte(ccrunProg), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-validate", src},
		{"-O=false", src},
		{"-safe", "-post", "-machine", "p90", src},
	} {
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("ccrun %v: %v", args, err)
		}
		if string(out) != "54\n" {
			t.Fatalf("ccrun %v printed %q, want %q", args, out, "54\n")
		}
	}
	// -S prints a listing instead of running.
	out, err := exec.Command(bin, "-S", src).Output()
	if err != nil {
		t.Fatalf("ccrun -S: %v", err)
	}
	if !strings.Contains(string(out), "main:") {
		t.Fatalf("ccrun -S listing has no main:\n%s", out)
	}
}

const runawayProg = `int main() {
    int i = 0;
    while (1) { i = i + 1; }
    return i;
}
`

// The new robustness flags: a runaway program must be stopped by both the
// wall-clock budget and the instruction budget.
func TestCCRunTimeoutAndStepLimit(t *testing.T) {
	bin := buildCCRun(t)
	src := filepath.Join(t.TempDir(), "loop.c")
	if err := os.WriteFile(src, []byte(runawayProg), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-timeout", "200ms", src)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 124 {
		t.Fatalf("-timeout: err = %v, want exit status 124; stderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timeout") {
		t.Fatalf("-timeout stderr: %q", stderr.String())
	}

	cmd = exec.Command(bin, "-max-steps", "100000", src)
	stderr.Reset()
	cmd.Stderr = &stderr
	err = cmd.Run()
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("-max-steps: err = %v, want exit status 1", err)
	}
	if !strings.Contains(stderr.String(), "instruction budget") {
		t.Fatalf("-max-steps stderr: %q", stderr.String())
	}
}

const allocProg = `int main() {
    int i;
    for (i = 0; i < 50; i = i + 1) {
        char *p = (char *)GC_malloc(32);
        *p = 'a';
    }
    print_str("done\n");
    return 0;
}
`

// -faults wires the fault-injection registry into the run: a simulated
// allocation failure must abort the program deterministically, and the
// same flags must reproduce the same outcome.
func TestCCRunFaultInjection(t *testing.T) {
	bin := buildCCRun(t)
	src := filepath.Join(t.TempDir(), "alloc.c")
	if err := os.WriteFile(src, []byte(allocProg), 0o644); err != nil {
		t.Fatal(err)
	}

	// Control: without -faults the program completes.
	out, err := exec.Command(bin, src).Output()
	if err != nil || string(out) != "done\n" {
		t.Fatalf("control run: %v %q", err, out)
	}

	run := func() (int, string) {
		cmd := exec.Command(bin, "-faults", "gc.alloc=error,after=10,msg=flag-oom", "-fault-seed", "7", src)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		err := cmd.Run()
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("err = %v, want exit error; stderr: %s", err, stderr.String())
		}
		return ee.ExitCode(), stderr.String()
	}
	code1, msg1 := run()
	code2, msg2 := run()
	if code1 != 1 || !strings.Contains(msg1, "flag-oom") {
		t.Fatalf("fault run: exit %d, stderr %q", code1, msg1)
	}
	if code1 != code2 || msg1 != msg2 {
		t.Fatalf("same seed diverged:\n%q\nvs\n%q", msg1, msg2)
	}

	// A malformed spec is a usage error.
	err = exec.Command(bin, "-faults", "nonsense", src).Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("bad spec: err = %v, want exit status 2", err)
	}
}
