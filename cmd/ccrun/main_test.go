package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test: build the command and run it end to end on a small program.

func buildCCRun(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ccrun")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const ccrunProg = `int main() {
    print_int(6 * 9);
    print_str("\n");
    return 0;
}
`

func TestCCRunSmoke(t *testing.T) {
	bin := buildCCRun(t)
	src := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(src, []byte(ccrunProg), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-validate", src},
		{"-O=false", src},
		{"-safe", "-post", "-machine", "p90", src},
	} {
		out, err := exec.Command(bin, args...).Output()
		if err != nil {
			t.Fatalf("ccrun %v: %v", args, err)
		}
		if string(out) != "54\n" {
			t.Fatalf("ccrun %v printed %q, want %q", args, out, "54\n")
		}
	}
	// -S prints a listing instead of running.
	out, err := exec.Command(bin, "-S", src).Output()
	if err != nil {
		t.Fatalf("ccrun -S: %v", err)
	}
	if !strings.Contains(string(out), "main:") {
		t.Fatalf("ccrun -S listing has no main:\n%s", out)
	}
}

const runawayProg = `int main() {
    int i = 0;
    while (1) { i = i + 1; }
    return i;
}
`

// The new robustness flags: a runaway program must be stopped by both the
// wall-clock budget and the instruction budget.
func TestCCRunTimeoutAndStepLimit(t *testing.T) {
	bin := buildCCRun(t)
	src := filepath.Join(t.TempDir(), "loop.c")
	if err := os.WriteFile(src, []byte(runawayProg), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-timeout", "200ms", src)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 124 {
		t.Fatalf("-timeout: err = %v, want exit status 124; stderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timeout") {
		t.Fatalf("-timeout stderr: %q", stderr.String())
	}

	cmd = exec.Command(bin, "-max-steps", "100000", src)
	stderr.Reset()
	cmd.Stderr = &stderr
	err = cmd.Run()
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("-max-steps: err = %v, want exit status 1", err)
	}
	if !strings.Contains(stderr.String(), "instruction budget") {
		t.Fatalf("-max-steps stderr: %q", stderr.String())
	}
}
