// Command ccrun compiles a C translation unit for the simulated machine
// and executes it against the conservative collector: the whole pipeline of
// the reproduction in one tool.
//
// Usage:
//
//	ccrun [flags] input.c
//
// Flags:
//
//	-O                 optimize (default true; -O=false is the -g pipeline)
//	-safe              run the GC-safety annotator first
//	-check             run the annotator in checking mode (debugging)
//	-temporal          run the annotator in temporal mode and arm the
//	                   allocation-epoch checker (use-after-free, double
//	                   free and recycled-address reads become violations)
//	-elide             drop annotations the pipeline's liveness analysis
//	                   proves redundant (KEEP_LIVEs whose base is visibly
//	                   live; in -check mode, provably in-bounds checks)
//	-threads n         execute on the concurrent-mutator simulation with
//	                   n deterministic threads (main + thread1..threadN-1)
//	-sched-seed n      interleaving schedule seed (0 = fixed default)
//	-collect-at-switch force a collection at every context switch
//	-post              run the peephole postprocessor
//	-machine name      ss2 | ss10 | p90 (default ss10)
//	-engine name       execution backend: interp (default) or threaded
//	                   (closure-threaded; bit-identical simulated results,
//	                   see DESIGN.md "Two execution engines")
//	-in file           program input (getchar stream)
//	-gc-every n        trigger a collection every n instructions (async regime)
//	-validate          detect accesses to reclaimed objects
//	-timeout d         abort the build+run after a wall-clock duration (0 = none)
//	-max-steps n       abort the run after n executed instructions (0 = default 2e9)
//	-S                 print the assembly listing instead of running
//	-stats             print cycle/GC statistics after the run
//	-stage-report      print the build's per-stage report (stage, cache
//	                   hit or computed, duration) to stderr
//	-faults spec       inject faults into the run (see internal/faultinject;
//	                   e.g. gc.alloc=error,after=100 simulates allocation
//	                   failure, gc.collect.force=error,p=0.1 a hostile
//	                   collection schedule)
//	-fault-seed n      seed for -faults firing schedules (default 1)
//	-heap-profile      record allocation sites and print a heap forensics
//	                   report to stderr after the run: top retainers by
//	                   retained size, each with its allocation site and
//	                   shortest root path (captured at exit, or at the
//	                   violation when a checker aborts the run)
//	-heap-dump file    write the raw heap snapshot as JSON (implies
//	                   -heap-profile's capture without the report)
//	-heap-top n        retainer rows in the -heap-profile report (default 10)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"gcsafety"
	"gcsafety/internal/engine"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/heapdump"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
)

func main() {
	var (
		optimize  = flag.Bool("O", true, "optimize")
		safe      = flag.Bool("safe", false, "annotate for GC-safety")
		check     = flag.Bool("check", false, "annotate for pointer-arithmetic checking")
		elide     = flag.Bool("elide", false, "elide annotations the liveness analysis proves redundant")
		temporal  = flag.Bool("temporal", false, "annotate in temporal mode and arm the epoch checker")
		threads   = flag.Int("threads", 0, "concurrent-mutator thread count (0 or 1 = single-thread)")
		schedSeed = flag.Uint64("sched-seed", 0, "interleaving schedule seed (0 = default)")
		collectSw = flag.Bool("collect-at-switch", false, "collect at every context switch")
		post      = flag.Bool("post", false, "run the peephole postprocessor")
		machname  = flag.String("machine", "ss10", "machine model: ss2, ss10 or p90")
		engName   = flag.String("engine", "", "execution backend: interp (default) or threaded")
		inFile    = flag.String("in", "", "program input file")
		gcEvery   = flag.Uint64("gc-every", 0, "collect every n instructions")
		validate  = flag.Bool("validate", false, "detect accesses to reclaimed objects")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for build+run (0 = none)")
		maxSteps  = flag.Uint64("max-steps", 0, "instruction budget for the run (0 = default)")
		baseOnly  = flag.Bool("base-only", false, "collector recognizes heap-stored interior pointers only at object bases (Extensions mode)")
		asm       = flag.Bool("S", false, "print assembly instead of running")
		stats     = flag.Bool("stats", false, "print statistics")
		stageRep  = flag.Bool("stage-report", false, "print the per-stage build report")
		faults    = flag.String("faults", "", "fault injection spec (empty = off)")
		faultSeed = flag.Uint64("fault-seed", 1, "seed for -faults firing schedules")
		heapProf  = flag.Bool("heap-profile", false, "print a heap forensics report after the run")
		heapDump  = flag.String("heap-dump", "", "write the heap snapshot as JSON to this file")
		heapTop   = flag.Int("heap-top", 10, "retainer rows in the -heap-profile report")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccrun [flags] input.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var cfg machine.Config
	switch *machname {
	case "ss2":
		cfg = machine.SPARCstation2()
	case "ss10":
		cfg = machine.SPARCstation10()
	case "p90":
		cfg = machine.Pentium90()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machname))
	}
	var input string
	if *inFile != "" {
		b, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		input = string(b)
	}
	if _, err := engine.Lookup(*engName); err != nil {
		fmt.Fprintf(os.Stderr, "ccrun: -engine: %v\n", err)
		os.Exit(2)
	}
	var faultSet *faultinject.Set
	if *faults != "" {
		faultSet, err = faultinject.Parse(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccrun: -faults: %v\n", err)
			os.Exit(2)
		}
	}
	p := gcsafety.Pipeline{
		Annotate:    *safe || *check || *temporal,
		Optimize:    *optimize,
		Postprocess: *post,
		Machine:     &cfg,
		Exec: interp.Options{
			Engine:          *engName,
			Input:           input,
			GCEveryInstrs:   *gcEvery,
			Validate:        *validate,
			Temporal:        *temporal,
			Threads:         *threads,
			SchedSeed:       *schedSeed,
			CollectAtSwitch: *collectSw,
			BaseOnlyHeap:    *baseOnly,
			MaxInstrs:       *maxSteps,
			HeapProfile:     *heapProf || *heapDump != "",
			Faults:          faultSet,
		},
	}
	if *temporal {
		p.AnnotateOptions = gcsafety.Temporal()
	} else if *check {
		p.AnnotateOptions = gcsafety.Checked()
	}
	p.AnnotateOptions.Elide = *elide
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if faultSet != nil {
		// The build stages (internal/pipeline) read their fault set from
		// the context; the interpreter gets it via Exec.Faults above. Same
		// set both ways, so -faults covers pipeline.<stage> points too.
		ctx = faultinject.WithContext(ctx, faultSet)
	}
	if *asm {
		prog, _, rep, err := gcsafety.BuildWithReportContext(ctx, flag.Arg(0), string(src), p)
		if err != nil {
			fatal(err)
		}
		if *stageRep {
			printStageReport(rep)
		}
		fmt.Print(prog.Listing())
		return
	}
	res, err := gcsafety.RunContext(ctx, flag.Arg(0), string(src), p)
	if *stageRep && res != nil {
		printStageReport(res.Report)
	}
	if res != nil && res.Exec != nil {
		fmt.Print(res.Exec.Output)
		// Heap artifacts are emitted even when the run errored: a checker
		// violation is exactly when the at-violation snapshot matters.
		emitHeapArtifacts(res.Exec, *heapProf, *heapDump, *heapTop)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ccrun: timeout (%v) exceeded\n", *timeout)
		os.Exit(124)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		e := res.Exec
		fmt.Fprintf(os.Stderr, "\n%s: %d instructions, %d cycles, %d collections, %d objects allocated, code size %d\n",
			cfg.Name, e.Instrs, e.Cycles, e.GCStats.Collections, e.GCStats.ObjectsAlloced, res.Program.Size())
	}
	os.Exit(int(res.Exec.ExitCode))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ccrun: %v\n", err)
	os.Exit(1)
}

// emitHeapArtifacts writes the end-of-run heap snapshot: the rendered
// forensics report to stderr under -heap-profile, the raw JSON under
// -heap-dump. Capture failures (a fault-injected heapdump.capture point)
// warn but never change the run's outcome.
func emitHeapArtifacts(e *interp.Result, report bool, dumpFile string, topN int) {
	if !report && dumpFile == "" {
		return
	}
	if e.Snapshot == nil {
		if e.SnapshotErr != "" {
			fmt.Fprintf(os.Stderr, "ccrun: heap snapshot lost: %s\n", e.SnapshotErr)
		}
		return
	}
	if dumpFile != "" {
		data, err := json.MarshalIndent(e.Snapshot, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(dumpFile, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if report {
		heapdump.Analyze(e.Snapshot).RenderReport(os.Stderr, topN)
	}
}

// printStageReport renders the stage-graph walk of the build: one line
// per executed stage with its cache disposition and duration.
func printStageReport(rep *gcsafety.BuildReport) {
	if rep == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "ccrun: build stages:")
	for _, st := range rep.Stages {
		disposition := "computed"
		if st.CacheHit {
			disposition = "cached"
		}
		fmt.Fprintf(os.Stderr, "  %-10s %-9s %9.3f ms\n", st.Stage, disposition, st.DurationMs)
	}
	if e := rep.Elision; e != nil {
		fmt.Fprintf(os.Stderr, "ccrun: elision: %d considered, %d elided (%d live, %d bounds), %d kept\n",
			e.Considered, e.Elided, e.ElidedLive, e.ElidedBounds, e.Kept)
	}
}
