// Command peephole compiles a C translation unit with GC-safety
// annotations and shows the effect of the paper's assembly-level
// postprocessor: the listing before and after, and the static and dynamic
// costs recovered.
//
// Usage:
//
//	peephole [flags] input.c
//
// Flags:
//
//	-machine name   ss2 | ss10 | p90 (default ss10)
//	-fn name        print only the named function's listings
//	-in file        program input for the dynamic measurement
package main

import (
	"flag"
	"fmt"
	"os"

	"gcsafety/internal/cc/parser"
	"gcsafety/internal/codegen"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/peephole"
)

func main() {
	var (
		machname = flag.String("machine", "ss10", "machine model: ss2, ss10 or p90")
		fnName   = flag.String("fn", "", "print only this function")
		inFile   = flag.String("in", "", "program input file")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: peephole [flags] input.c")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var cfg machine.Config
	switch *machname {
	case "ss2":
		cfg = machine.SPARCstation2()
	case "ss10":
		cfg = machine.SPARCstation10()
	case "p90":
		cfg = machine.Pentium90()
	default:
		fatal(fmt.Errorf("unknown machine %q", *machname))
	}
	var input string
	if *inFile != "" {
		b, err := os.ReadFile(*inFile)
		if err != nil {
			fatal(err)
		}
		input = string(b)
	}

	build := func() *machine.Program {
		file, err := parser.Parse(flag.Arg(0), string(srcBytes))
		if err != nil {
			fatal(err)
		}
		if _, err := gcsafe.Annotate(file, gcsafe.Options{}); err != nil {
			fatal(err)
		}
		prog, err := codegen.Compile(file, codegen.Options{Optimize: true, Machine: cfg})
		if err != nil {
			fatal(err)
		}
		return prog
	}

	before := build()
	after := build()
	st := peephole.Optimize(after, cfg)

	show := func(title string, p *machine.Program) {
		fmt.Printf("--- %s (size %d)\n", title, p.Size())
		if *fnName != "" {
			f, ok := p.Funcs[*fnName]
			if !ok {
				fatal(fmt.Errorf("no function %q", *fnName))
			}
			for _, in := range f.Code {
				fmt.Println(in)
			}
			return
		}
		fmt.Print(p.Listing())
	}
	show("before postprocessing", before)
	show("after postprocessing", after)
	fmt.Printf("--- postprocessor: %d adds fused, %d copies removed, %d adds retargeted\n",
		st.Fused, st.CopiesGone, st.Retargeted)

	rb, err := interp.Run(before, interp.Options{Config: cfg, Input: input})
	if err != nil {
		fatal(err)
	}
	ra, err := interp.Run(after, interp.Options{Config: cfg, Input: input})
	if err != nil {
		fatal(err)
	}
	if rb.Output != ra.Output {
		fatal(fmt.Errorf("postprocessing changed program output"))
	}
	fmt.Printf("--- cycles: %d -> %d (%.1f%% recovered)\n", rb.Cycles, ra.Cycles,
		100*float64(rb.Cycles-ra.Cycles)/float64(rb.Cycles))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "peephole: %v\n", err)
	os.Exit(1)
}
