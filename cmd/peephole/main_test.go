package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test: compile an annotated program and show the postprocessor's
// before/after listings and recovered cost.

func buildPeephole(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "peephole")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const peepholeProg = `int sum(char *p, int n) {
    int s = 0;
    while (n > 0) { s = s + *p; p++; n--; }
    return s;
}
int main() {
    char *b = (char *)GC_malloc(64);
    int j;
    for (j = 0; j < 64; j++) b[j] = 1;
    print_int(sum(b, 64));
    print_str("\n");
    return 0;
}
`

func TestPeepholeSmoke(t *testing.T) {
	bin := buildPeephole(t)
	src := filepath.Join(t.TempDir(), "prog.c")
	if err := os.WriteFile(src, []byte(peepholeProg), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bin, "-machine", "ss10", src).Output()
	if err != nil {
		t.Fatalf("peephole: %v", err)
	}
	text := string(out)
	for _, want := range []string{
		"before postprocessing",
		"after postprocessing",
		"--- postprocessor:",
		"--- cycles:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("peephole output missing %q:\n%s", want, text)
		}
	}
}
