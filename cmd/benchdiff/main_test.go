package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gcsafety
BenchmarkTableSS2-8   	      10	 123456789 ns/op	  42.0 %safe/gawk
BenchmarkInterpThroughput/gawk-8 	     200	   5432100 ns/op	 120.5 Mcycles/sec
--- BENCH: BenchmarkTableSS2-8
    bench_test.go:53: log output that mentions Benchmark text
PASS
ok  	gcsafety	3.210s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkTableSS2-8" || b.Iters != 10 {
		t.Fatalf("bad first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 || b.Metrics["%safe/gawk"] != 42.0 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	if f.Benchmarks[1].Metrics["Mcycles/sec"] != 120.5 {
		t.Fatalf("bad custom metric: %+v", f.Benchmarks[1].Metrics)
	}
}

func bf(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Iters: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompare(t *testing.T) {
	old := &File{Benchmarks: []Benchmark{bf("A", 100), bf("B", 100), bf("C", 100)}}
	nw := &File{Benchmarks: []Benchmark{bf("A", 105), bf("B", 150), bf("D", 70)}}

	report, regressed := Compare(old, nw, "ns/op", 10)
	if !regressed {
		t.Fatalf("B regressed 50%%, want failure; report:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing regression markers:\n%s", report)
	}
	// A (+5%) is inside the threshold; C is gone and D is new — neither
	// fails the gate.
	report, regressed = Compare(old, &File{Benchmarks: []Benchmark{bf("A", 105), bf("D", 70)}}, "ns/op", 10)
	if regressed {
		t.Fatalf("no benchmark over threshold, want pass; report:\n%s", report)
	}
	if !strings.Contains(report, "gone") || !strings.Contains(report, "new") {
		t.Fatalf("report missing added/removed rows:\n%s", report)
	}
}

func TestCompareIdentity(t *testing.T) {
	f := &File{Benchmarks: []Benchmark{bf("A", 100)}}
	if report, regressed := Compare(f, f, "ns/op", 10); regressed {
		t.Fatalf("file vs itself regressed:\n%s", report)
	}
}
