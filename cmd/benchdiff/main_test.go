package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: gcsafety
BenchmarkTableSS2-8   	      10	 123456789 ns/op	  42.0 %safe/gawk
BenchmarkInterpThroughput/gawk-8 	     200	   5432100 ns/op	 120.5 Mcycles/sec
--- BENCH: BenchmarkTableSS2-8
    bench_test.go:53: log output that mentions Benchmark text
PASS
ok  	gcsafety	3.210s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkTableSS2-8" || b.Iters != 10 {
		t.Fatalf("bad first benchmark: %+v", b)
	}
	if b.Metrics["ns/op"] != 123456789 || b.Metrics["%safe/gawk"] != 42.0 {
		t.Fatalf("bad metrics: %+v", b.Metrics)
	}
	if f.Benchmarks[1].Metrics["Mcycles/sec"] != 120.5 {
		t.Fatalf("bad custom metric: %+v", f.Benchmarks[1].Metrics)
	}
}

// A -count 3 run repeats every benchmark; the record must keep one entry
// per name with each metric's minimum (the least-disturbed observation).
func TestParseMinOfRepeatedRuns(t *testing.T) {
	const repeated = `BenchmarkX-1   	      10	 300 ns/op	 50.0 Mcycles/sec
BenchmarkY-1   	      10	 100 ns/op
BenchmarkX-1   	      10	 100 ns/op	 40.0 Mcycles/sec
BenchmarkX-1   	      10	 200 ns/op	 60.0 Mcycles/sec
`
	f, err := Parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2 (repeats collapsed): %+v", len(f.Benchmarks), f.Benchmarks)
	}
	x := f.Benchmarks[0]
	if x.Name != "BenchmarkX-1" {
		t.Fatalf("first-appearance order lost: %+v", f.Benchmarks)
	}
	if x.Metrics["ns/op"] != 100 || x.Metrics["Mcycles/sec"] != 40.0 {
		t.Fatalf("want per-metric minimum (100 ns/op, 40.0 Mcycles/sec), got %+v", x.Metrics)
	}
}

func bf(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Iters: 1, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompare(t *testing.T) {
	old := &File{Benchmarks: []Benchmark{bf("A", 100), bf("B", 100), bf("C", 100)}}
	nw := &File{Benchmarks: []Benchmark{bf("A", 105), bf("B", 150), bf("D", 70)}}

	report, regressed := Compare(old, nw, "ns/op", 10)
	if !regressed {
		t.Fatalf("B regressed 50%%, want failure; report:\n%s", report)
	}
	if !strings.Contains(report, "REGRESSION") || !strings.Contains(report, "FAIL") {
		t.Fatalf("report missing regression markers:\n%s", report)
	}
	// A (+5%) is inside the threshold; C is gone and D is new — neither
	// fails the gate.
	report, regressed = Compare(old, &File{Benchmarks: []Benchmark{bf("A", 105), bf("D", 70)}}, "ns/op", 10)
	if regressed {
		t.Fatalf("no benchmark over threshold, want pass; report:\n%s", report)
	}
	if !strings.Contains(report, "gone") || !strings.Contains(report, "new") {
		t.Fatalf("report missing added/removed rows:\n%s", report)
	}
}

// bm builds a benchmark whose metric map is given inline.
func bm(name string, metrics map[string]float64) Benchmark {
	return Benchmark{Name: name, Iters: 1, Metrics: metrics}
}

// TestCompareAllocGating pins the memory gate: B/op and allocs/op
// regressions past the threshold fail the compare even when the primary
// metric is flat, but only for benchmarks where both snapshots carry the
// allocation metrics.
func TestCompareAllocGating(t *testing.T) {
	tests := []struct {
		name      string
		old, nw   Benchmark
		regressed bool
		marker    string // substring the report must contain when regressed
	}{
		{
			name:      "flat ns/op hides B/op regression",
			old:       bm("A", map[string]float64{"ns/op": 100, "B/op": 1000, "allocs/op": 10}),
			nw:        bm("A", map[string]float64{"ns/op": 100, "B/op": 1500, "allocs/op": 10}),
			regressed: true,
			marker:    "allocation regressions (B/op):",
		},
		{
			name:      "flat ns/op hides allocs/op regression",
			old:       bm("A", map[string]float64{"ns/op": 100, "B/op": 1000, "allocs/op": 10}),
			nw:        bm("A", map[string]float64{"ns/op": 100, "B/op": 1000, "allocs/op": 20}),
			regressed: true,
			marker:    "allocation regressions (allocs/op):",
		},
		{
			name:      "within threshold on all metrics",
			old:       bm("A", map[string]float64{"ns/op": 100, "B/op": 1000, "allocs/op": 10}),
			nw:        bm("A", map[string]float64{"ns/op": 105, "B/op": 1050, "allocs/op": 10}),
			regressed: false,
		},
		{
			name:      "alloc metrics only in the new file never gate",
			old:       bm("A", map[string]float64{"ns/op": 100}),
			nw:        bm("A", map[string]float64{"ns/op": 100, "B/op": 9999, "allocs/op": 99}),
			regressed: false,
		},
		{
			name:      "alloc metrics only in the old file never gate",
			old:       bm("A", map[string]float64{"ns/op": 100, "B/op": 1000, "allocs/op": 10}),
			nw:        bm("A", map[string]float64{"ns/op": 100}),
			regressed: false,
		},
		{
			name:      "alloc improvement passes",
			old:       bm("A", map[string]float64{"ns/op": 100, "B/op": 1000, "allocs/op": 10}),
			nw:        bm("A", map[string]float64{"ns/op": 100, "B/op": 500, "allocs/op": 5}),
			regressed: false,
		},
		{
			name:      "zero old B/op never gates",
			old:       bm("A", map[string]float64{"ns/op": 100, "B/op": 0, "allocs/op": 0}),
			nw:        bm("A", map[string]float64{"ns/op": 100, "B/op": 64, "allocs/op": 1}),
			regressed: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			old := &File{Benchmarks: []Benchmark{tt.old}}
			nw := &File{Benchmarks: []Benchmark{tt.nw}}
			report, regressed := Compare(old, nw, "ns/op", 10)
			if regressed != tt.regressed {
				t.Fatalf("regressed = %v, want %v; report:\n%s", regressed, tt.regressed, report)
			}
			if tt.marker != "" && !strings.Contains(report, tt.marker) {
				t.Fatalf("report missing %q:\n%s", tt.marker, report)
			}
		})
	}
}

func TestCompareIdentity(t *testing.T) {
	f := &File{Benchmarks: []Benchmark{bf("A", 100)}}
	if report, regressed := Compare(f, f, "ns/op", 10); regressed {
		t.Fatalf("file vs itself regressed:\n%s", report)
	}
}
