// Command benchdiff turns `go test -bench` output into JSON and gates
// regressions between two such snapshots. It is the tooling behind `make
// bench` (which records BENCH_PR4.json at the repo root) and the
// bench-smoke gate in `make check`.
//
// Usage:
//
//	go test -bench . -run '^$' | benchdiff -parse > new.json
//	benchdiff [-metric ns/op] [-threshold 10] old.json new.json
//
// Parse mode reads benchmark text on stdin and writes one JSON document on
// stdout: every benchmark line's iteration count and all its value/unit
// metric pairs (ns/op, B/op, and any b.ReportMetric custom units). A
// benchmark appearing several times (`-count N`) collapses to one entry
// holding each metric's minimum: on a shared/steal-prone host the fastest
// observation is the least disturbed one, so min-of-N records make the
// regression gate robust to scheduling noise that single runs cannot
// distinguish from real slowdowns.
//
// Compare mode reads two such documents and prints a per-benchmark delta
// of the chosen metric for every benchmark present in both. It exits 1 if
// any benchmark regressed by more than the threshold percentage — for
// ns/op and other smaller-is-better metrics a regression is an increase.
// Benchmarks present in only one file are listed but never fail the gate:
// adding or retiring a benchmark is not a performance regression.
//
// Alongside the chosen metric, compare mode always gates the allocation
// metrics B/op and allocs/op for benchmarks where both files carry them
// (i.e. both snapshots ran with -benchmem): a memory regression can hide
// behind a flat ns/op. Benchmarks carrying the metrics in only one file
// never fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the JSON document benchdiff reads and writes.
type File struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		parse     = flag.Bool("parse", false, "read `go test -bench` text on stdin, write JSON on stdout")
		metric    = flag.String("metric", "ns/op", "metric compared in diff mode")
		threshold = flag.Float64("threshold", 10, "max allowed regression percentage before exiting 1")
	)
	flag.Parse()

	switch {
	case *parse:
		if flag.NArg() != 0 {
			usage()
		}
		f, err := Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(f); err != nil {
			fatal(err)
		}
	case flag.NArg() == 2:
		old, err := load(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		nw, err := load(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		report, regressed := Compare(old, nw, *metric, *threshold)
		fmt.Print(report)
		if regressed {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: benchdiff -parse < bench.txt > out.json")
	fmt.Fprintln(os.Stderr, "       benchdiff [-metric ns/op] [-threshold pct] old.json new.json")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Parse extracts benchmark result lines from `go test -bench` text. A
// result line is "BenchmarkName-N  <iters>  <value> <unit> [<value>
// <unit>...]"; everything else (pkg headers, PASS, b.Log output) is
// ignored. Repeated names (`-count N`) collapse to one entry carrying the
// per-metric minimum, in first-appearance order.
func Parse(r io.Reader) (*File, error) {
	f := &File{Benchmarks: []Benchmark{}}
	seen := map[string]int{} // name → index in f.Benchmarks
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." in prose, not a result line
		}
		b := Benchmark{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad metric value %q", b.Name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		if at, dup := seen[b.Name]; dup {
			prev := &f.Benchmarks[at]
			for unit, v := range b.Metrics {
				if old, ok := prev.Metrics[unit]; !ok || v < old {
					prev.Metrics[unit] = v
				}
			}
			continue
		}
		seen[b.Name] = len(f.Benchmarks)
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// allocMetrics are gated alongside the primary metric whenever both
// snapshots carry them: smaller-is-better, like ns/op.
var allocMetrics = []string{"B/op", "allocs/op"}

// Compare renders a delta table of metric between two files and reports
// whether any benchmark regressed past threshold percent — on the chosen
// metric, or on an allocation metric both files carry. Smaller is
// better: a positive delta is a slowdown.
func Compare(old, nw *File, metric string, threshold float64) (string, bool) {
	index := func(f *File) map[string]Benchmark {
		m := make(map[string]Benchmark, len(f.Benchmarks))
		for _, b := range f.Benchmarks {
			m[b.Name] = b
		}
		return m
	}
	om, nm := index(old), index(nw)
	names := make([]string, 0, len(om))
	for name := range om {
		names = append(names, name)
	}
	for name := range nm {
		if _, ok := om[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var sb strings.Builder
	regressed := false
	fmt.Fprintf(&sb, "%-40s %14s %14s %9s\n", "benchmark ("+metric+")", "old", "new", "delta")
	for _, name := range names {
		ob, inOld := om[name]
		nb, inNew := nm[name]
		ov, hasOld := ob.Metrics[metric]
		nv, hasNew := nb.Metrics[metric]
		switch {
		case !inOld:
			fmt.Fprintf(&sb, "%-40s %14s %14.1f %9s\n", name, "-", nv, "new")
		case !inNew:
			fmt.Fprintf(&sb, "%-40s %14.1f %14s %9s\n", name, ov, "-", "gone")
		case !hasOld || !hasNew || ov == 0:
			fmt.Fprintf(&sb, "%-40s %14s %14s %9s\n", name, "?", "?", "n/a")
		default:
			delta := (nv/ov - 1) * 100
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressed = true
			}
			fmt.Fprintf(&sb, "%-40s %14.1f %14.1f %+8.1f%%%s\n", name, ov, nv, delta, mark)
		}
	}
	for _, am := range allocMetrics {
		if am == metric {
			continue // already the primary table
		}
		header := false
		for _, name := range names {
			ob, inOld := om[name]
			nb, inNew := nm[name]
			if !inOld || !inNew {
				continue
			}
			ov, hasOld := ob.Metrics[am]
			nv, hasNew := nb.Metrics[am]
			if !hasOld || !hasNew || ov == 0 {
				continue // one-sided metric: never gates
			}
			if delta := (nv/ov - 1) * 100; delta > threshold {
				if !header {
					fmt.Fprintf(&sb, "allocation regressions (%s):\n", am)
					header = true
				}
				fmt.Fprintf(&sb, "%-40s %14.1f %14.1f %+8.1f%%  REGRESSION\n", name, ov, nv, delta)
				regressed = true
			}
		}
	}
	if regressed {
		fmt.Fprintf(&sb, "FAIL: at least one benchmark regressed more than %.0f%%\n", threshold)
	}
	return sb.String(), regressed
}
