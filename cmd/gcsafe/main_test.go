package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test: the preprocessor reads a translation unit on stdin and emits
// an annotated program on stdout.

func buildGCSafe(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gcsafe")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

const gcsafeProg = `int main() {
    int i = getchar() + 2000;
    char *p = (char *)GC_malloc(2000);
    p[5] = 55;
    print_int(p[i - 1000]);
    return 0;
}
`

func TestGCSafeSmoke(t *testing.T) {
	bin := buildGCSafe(t)

	cmd := exec.Command(bin, "-mode", "safe")
	cmd.Stdin = strings.NewReader(gcsafeProg)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("gcsafe -mode safe: %v", err)
	}
	if !strings.Contains(string(out), "KEEP_LIVE") {
		t.Fatalf("safe mode emitted no KEEP_LIVE annotation:\n%s", out)
	}

	cmd = exec.Command(bin, "-mode", "check")
	cmd.Stdin = strings.NewReader(gcsafeProg)
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("gcsafe -mode check: %v", err)
	}
	if !strings.Contains(string(out), "GC_same_obj") {
		t.Fatalf("check mode emitted no GC_same_obj check:\n%s", out)
	}
}
