// Command gcsafe is the paper's C-to-C preprocessor: it reads a C
// translation unit and writes the same program annotated for GC-safety
// (KEEP_LIVE) or for run-time pointer-arithmetic checking (GC_same_obj).
// It is intended to run "between the normal C preprocessor (macro-expander)
// and the C compiler".
//
// Usage:
//
//	gcsafe [flags] [input.c]
//
// With no input file, standard input is read. The rewritten program goes
// to standard output (or -o); source-checking warnings go to stderr.
//
// Flags:
//
//	-mode safe|check|temporal   annotation mode (default safe)
//	-style macro|asm   KEEP_LIVE expansion style (default macro)
//	-o file            output file
//	-no-opt1           disable copy suppression (paper optimization 1)
//	-no-opt2           disable the specialized ++/-- expansion (optimization 2)
//	-base-heuristic    enable the slowly-varying-base substitution (optimization 3)
//	-elide             drop annotations the liveness analysis proves
//	                   redundant (in check mode only provably in-bounds
//	                   checks, so detection power is unchanged)
//	-stats             print annotation statistics to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcsafety"
	"gcsafety/internal/gcsafe"
)

func main() {
	var (
		mode      = flag.String("mode", "safe", "annotation mode: safe, check or temporal")
		style     = flag.String("style", "macro", "KEEP_LIVE expansion style: macro or asm")
		out       = flag.String("o", "", "output file (default stdout)")
		noOpt1    = flag.Bool("no-opt1", false, "disable copy suppression")
		noOpt2    = flag.Bool("no-opt2", false, "disable the specialized ++/-- expansion")
		heuristic = flag.Bool("base-heuristic", false, "enable the base-pointer heuristic")
		callsite  = flag.Bool("call-site-gc", false, "assume collections only at call sites (optimization 4)")
		strict    = flag.Bool("strict-casts", false, "warn on structure-pointer casts that change pointer layout")
		elide     = flag.Bool("elide", false, "elide annotations the liveness analysis proves redundant")
		stats     = flag.Bool("stats", false, "print annotation statistics")
	)
	flag.Parse()

	opts := gcsafe.Options{
		NoCopySuppression:  *noOpt1,
		NoIncDecExpansion:  *noOpt2,
		BaseHeuristic:      *heuristic,
		CallSiteOnly:       *callsite,
		StrictCastWarnings: *strict,
		Elide:              *elide,
	}
	switch *mode {
	case "safe":
		opts.Mode = gcsafe.ModeSafe
	case "check", "checked":
		opts.Mode = gcsafe.ModeChecked
	case "temporal":
		opts.Mode = gcsafe.ModeTemporal
	default:
		fmt.Fprintf(os.Stderr, "gcsafe: unknown -mode %q\n", *mode)
		os.Exit(2)
	}
	switch *style {
	case "macro":
		opts.Style = gcsafe.EmitMacro
	case "asm":
		opts.Style = gcsafe.EmitAsm
	default:
		fmt.Fprintf(os.Stderr, "gcsafe: unknown -style %q\n", *style)
		os.Exit(2)
	}

	name := "<stdin>"
	var src []byte
	var err error
	if flag.NArg() > 0 {
		name = flag.Arg(0)
		src, err = os.ReadFile(name)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsafe: %v\n", err)
		os.Exit(1)
	}

	// Annotation runs through the root API's stage-graph pipeline, sharing
	// the lex/parse/typecheck artifacts with any other build of the same
	// source in this process.
	res, err := gcsafety.Annotate(name, string(src), opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsafe: %v\n", err)
		os.Exit(1)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, w)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "gcsafe: %d annotations inserted, %d suppressed (optimization 1), %d temporaries\n",
			res.Inserted, res.Suppressed, res.Temps)
		if *elide {
			fmt.Fprintf(os.Stderr, "gcsafe: %d elided by liveness (%d live, %d bounds) of %d considered\n",
				res.Elided, res.ElidedLive, res.ElidedBounds, res.Considered)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsafe: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if _, err := io.WriteString(w, res.Output); err != nil {
		fmt.Fprintf(os.Stderr, "gcsafe: %v\n", err)
		os.Exit(1)
	}
}
