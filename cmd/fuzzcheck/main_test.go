package main

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestFuzzcheckSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fuzzcheck")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-n", "3", "-steps", "4", "-machines", "ss10").Output()
	if err != nil {
		t.Fatalf("fuzzcheck: %v", err)
	}
	if !strings.Contains(string(out), "fuzzcheck: 3 programs, 0 violations") {
		t.Fatalf("unexpected campaign summary:\n%s", out)
	}

	// An expired -timeout must stop the campaign with exit status 3, not
	// hang it.
	cmd := exec.Command(bin, "-n", "100000", "-steps", "8", "-timeout", "1ns")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err = cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 3 {
		t.Fatalf("timeout run: err = %v, want exit status 3; stderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timeout") {
		t.Fatalf("timeout run stderr: %q", stderr.String())
	}

	// -max-steps must be accepted and keep a normal campaign green.
	out, err = exec.Command(bin, "-n", "2", "-steps", "4", "-machines", "ss10", "-max-steps", "1000000").Output()
	if err != nil {
		t.Fatalf("fuzzcheck -max-steps: %v", err)
	}
	if !strings.Contains(string(out), "2 programs, 0 violations") {
		t.Fatalf("unexpected -max-steps summary:\n%s", out)
	}
}

// -faults turns a campaign into a deterministic error-path test: with an
// always-failing allocator every must-agree treatment faults, so the
// campaign must report violations and exit 1 — identically every run.
func TestFuzzcheckFaultInjection(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fuzzcheck")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	run := func() (int, string) {
		cmd := exec.Command(bin, "-n", "1", "-steps", "4", "-machines", "ss10",
			"-faults", "gc.alloc=error,msg=campaign-oom", "-fault-seed", "5", "-reduce=false")
		var stdout strings.Builder
		cmd.Stdout = &stdout
		err := cmd.Run()
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("err = %v, want exit error; stdout: %s", err, stdout.String())
		}
		return ee.ExitCode(), stdout.String()
	}
	code1, out1 := run()
	code2, out2 := run()
	if code1 != 1 || !strings.Contains(out1, "campaign-oom") {
		t.Fatalf("fault campaign: exit %d\n%s", code1, out1)
	}
	if code1 != code2 || out1 != out2 {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", out1, out2)
	}

	// A malformed spec is a usage error.
	err := exec.Command(bin, "-faults", "nonsense").Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("bad spec: err = %v, want exit status 2", err)
	}
}
