package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestFuzzcheckSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "fuzzcheck")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "-n", "3", "-steps", "4", "-machines", "ss10").Output()
	if err != nil {
		t.Fatalf("fuzzcheck: %v", err)
	}
	if !strings.Contains(string(out), "fuzzcheck: 3 programs, 0 violations") {
		t.Fatalf("unexpected campaign summary:\n%s", out)
	}
}
