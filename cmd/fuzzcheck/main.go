// Command fuzzcheck drives long differential-fuzzing campaigns from the
// command line: it generates random well-defined C programs from seeded
// deterministic state, runs every one through the full treatment matrix
// ({unannotated, safe, checked} x {-g, -O} x {peephole on/off} x machines,
// plus the adversarial collection schedule), and reports any must-agree
// treatment that diverged from the Go-side model — minimized by the
// delta-debugging reducer before printing.
//
// Usage:
//
//	fuzzcheck [flags]
//
// Flags:
//
//	-n count          number of programs to generate (default 100)
//	-seed s           first seed; programs use seeds s, s+1, ... (default 1)
//	-steps k          operations per generated program (default 8)
//	-machines list    comma-separated subset of ss2,ss10,p90 (default all)
//	-timeout d        wall-clock budget for the whole campaign (0 = none);
//	                  on expiry the campaign stops with exit status 3
//	-max-steps n      instruction budget per treatment run, so a runaway
//	                  generated program cannot hang the campaign (default 50M)
//	-stop             stop at the first violation
//	-reduce           minimize failing programs before reporting (default true)
//	-unsafe           also show premature reclamations of the unannotated
//	                  optimized build (the paper's expected failures)
//	-faults spec      inject faults into every treatment run (see
//	                  internal/faultinject); injected failures in
//	                  must-agree treatments report as violations, turning
//	                  a campaign into a deterministic error-path test
//	-fault-seed n     seed for -faults firing schedules (default 1)
//	-v                print one line per program
//
// Exit status is 1 if any must-agree treatment disagreed with the model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"gcsafety/internal/faultinject"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/machine"
)

func main() {
	var (
		n          = flag.Int("n", 100, "number of programs")
		seed       = flag.Int64("seed", 1, "first seed")
		steps      = flag.Int("steps", 8, "operations per program")
		machlist   = flag.String("machines", "", "comma-separated machines (ss2,ss10,p90)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the campaign (0 = none)")
		maxSteps   = flag.Uint64("max-steps", 50_000_000, "instruction budget per treatment run")
		stop       = flag.Bool("stop", false, "stop at first violation")
		reduce     = flag.Bool("reduce", true, "minimize failing programs")
		showUnsafe = flag.Bool("unsafe", false, "report unsafe-build reclamations too")
		faults     = flag.String("faults", "", "fault injection spec for every treatment run (empty = off)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for -faults firing schedules")
		verbose    = flag.Bool("v", false, "per-program progress")
	)
	flag.Parse()

	machines, err := parseMachines(*machlist)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzzcheck:", err)
		os.Exit(2)
	}
	var faultSet *faultinject.Set
	if *faults != "" {
		faultSet, err = faultinject.Parse(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fuzzcheck: -faults:", err)
			os.Exit(2)
		}
	}
	opt := fuzz.MatrixOptions{Machines: machines, StopOnViolation: *stop, MaxInstrs: *maxSteps, Faults: faultSet}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	violations, unsafeFaults, reclamations := 0, 0, 0
	for i := 0; i < *n; i++ {
		s := *seed + int64(i)
		p := fuzz.Generate(s, *steps)
		m, err := fuzz.RunMatrixContext(ctx, p, opt)
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "fuzzcheck: timeout (%v) exceeded after %d programs\n", *timeout, i)
			os.Exit(3)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fuzzcheck: harness failure: %v\n", err)
			os.Exit(2)
		}
		if *verbose {
			fmt.Printf("seed %d: %d treatments, %d violations, %d unsafe failures\n",
				s, len(m.Results), len(m.Violations), len(m.UnsafeFailures))
		}
		unsafeFaults += len(m.UnsafeFailures)
		reclamations += m.PrematureReclamations()
		if *showUnsafe {
			for _, r := range m.UnsafeFailures {
				if fuzz.IsReclamationFault(r.Err) {
					fmt.Printf("seed %d [%s] premature reclamation (expected for this treatment): %v\n",
						s, r.Name(), r.Err)
				}
			}
		}
		if len(m.Violations) > 0 {
			violations += len(m.Violations)
			report(p, m.Violations, *reduce)
			if *stop {
				break
			}
		}
	}
	fmt.Printf("fuzzcheck: %d programs, %d violations, %d tolerated unsafe-build failures (%d premature reclamations)\n",
		*n, violations, unsafeFaults, reclamations)
	if violations > 0 {
		os.Exit(1)
	}
}

func report(p *fuzz.Program, rs []fuzz.TreatmentResult, minimize bool) {
	fmt.Println("=== VIOLATION ===")
	fmt.Print(fuzz.Describe(p, rs))
	if minimize {
		reduced := fuzz.ReduceViolation(p, rs[0])
		fmt.Printf("minimized repro (%d lines):\n%s\n", fuzz.CountLines(reduced), reduced)
	}
}

func parseMachines(list string) ([]machine.Config, error) {
	if list == "" {
		return nil, nil // matrix default: all machines
	}
	var out []machine.Config
	for _, name := range strings.Split(list, ",") {
		switch strings.TrimSpace(name) {
		case "ss2":
			out = append(out, machine.SPARCstation2())
		case "ss10":
			out = append(out, machine.SPARCstation10())
		case "p90":
			out = append(out, machine.Pentium90())
		default:
			return nil, fmt.Errorf("unknown machine %q (want ss2, ss10 or p90)", name)
		}
	}
	return out, nil
}
