// Command loadgen drives a gcsafed node or cluster with a deterministic
// mixed /v1/* workload and reports availability and dedup effectiveness.
// It is the measurement half of the cluster-smoke gate: under chaos fault
// rotation and a kill -9 mid-run, the cluster must keep answering (≥99%
// of logical requests succeed) and must not melt into recompute storms
// (cluster-wide compute count stays near the distinct-artifact baseline).
//
// Usage:
//
//	loadgen -targets url[,url...] [flags]
//
// Flags:
//
//	-targets urls     comma-separated base URLs of the nodes under load
//	                  (required)
//	-requests n       logical requests in the mixed phase (default 800)
//	-duration d       minimum mixed-phase duration; sampling continues
//	                  past -requests until it elapses (default 0)
//	-concurrency n    in-flight logical requests (default 16)
//	-sources n        distinct generated source programs; the distinct-
//	                  artifact universe is 3 cells per source (default 32)
//	-seed n           workload seed; same seed, same mix (default 1)
//	-warm n           warmup passes issuing every distinct cell once per
//	                  pass, rotating targets, before the mixed phase
//	                  (default 1; 0 = cold start)
//	-chaos-every n    attach a rotating graceful-degradation fault header
//	                  to every nth mixed request (0 = off; the targets
//	                  must run -allow-fault-headers)
//	-min-ok ratio     exit 1 if the logical-success ratio ends below this
//	                  (default 0 = report only)
//	-json             print the report as JSON on stdout (default: text)
//
// A logical request fails over across targets: a transport error or 5xx
// from one node sends the same request to the next, and only a request
// that exhausts every target (or draws a 4xx) counts as failed. That is
// the availability contract a load balancer in front of the cluster
// would provide, so it is what the gate measures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gcsafety/internal/client"
	"gcsafety/internal/server"
)

// chaosRotation is the graceful-degradation fault mix: peer-link severs
// (the cluster must fall back to local computes, not fail) and handler
// latency. Deliberately no compute-path or handler error faults — those
// make 5xx the *correct* response, and this tool's gate is that 5xx never
// happens.
var chaosRotation = []string{
	"cluster.peer.get=error,msg=chaos-sever",
	"cluster.peer.put=error,msg=chaos-sever",
	"server.handler=sleep,ms=2",
	"cluster.peer.get=error,p=0.5;cluster.peer.put=error,p=0.5",
}

// reqT is one request template from the deterministic workload universe.
type reqT struct {
	path string
	body map[string]any
}

// universe builds the request templates for n sources. Each source
// contributes four templates (annotate, check, compile, run) and three
// distinct compute cells: its annotate options cell, the check cell
// (annotate with strict casts), and its compile cell (run reuses it).
func universe(n int) (templates []reqT, distinctCells int) {
	modes := []string{"safe", "checked", "temporal"}
	machines := []string{"ss10", "ss2", "p90"}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(
			"int main() { int i; int s; s = 0; for (i = 0; i < %d; i++) { s = s + i; } return s %% 256; }",
			10+i)
		name := fmt.Sprintf("gen%d.c", i)
		annotate := modes[i%len(modes)]
		templates = append(templates,
			reqT{"/v1/annotate", map[string]any{"name": name, "source": src, "mode": annotate}},
			reqT{"/v1/check", map[string]any{"name": name, "source": src}},
			reqT{"/v1/compile", map[string]any{
				"name": name, "source": src, "machine": machines[i%len(machines)],
				"annotate": annotate, "optimize": i%2 == 0,
			}},
			reqT{"/v1/run", map[string]any{
				"name": name, "source": src, "machine": machines[i%len(machines)],
				"annotate": annotate, "optimize": i%2 == 0, "gc_every": 64,
			}},
		)
	}
	return templates, 3 * n
}

// TargetReport is one node's scrape in the final report.
type TargetReport struct {
	Target      string `json:"target"`
	Compiles    uint64 `json:"compiles"`
	Annotations uint64 `json:"annotations"`
	Unreachable bool   `json:"unreachable,omitempty"`
}

// Report is the machine-readable outcome (stdout under -json).
type Report struct {
	Targets       []string `json:"targets"`
	WarmRequests  uint64   `json:"warm_requests"`
	MixedRequests uint64   `json:"mixed_requests"`
	Requests      uint64   `json:"requests"` // warm + mixed
	OK            uint64   `json:"ok"`
	HTTP4xx       uint64   `json:"http_4xx"`
	HTTP5xx       uint64   `json:"http_5xx"` // final status of failed logical requests
	TransportErrs uint64   `json:"transport_errors"`
	Failovers     uint64   `json:"failovers"`
	ChaosInjected uint64   `json:"chaos_injected"`
	OKRatio       float64  `json:"ok_ratio"`
	DistinctCells int      `json:"distinct_cells"`
	DurationMs    int64    `json:"duration_ms"`
	// Computes sums compiles+annotations across the reachable targets:
	// how many times the cluster really did the work. Compare against
	// DistinctCells (the perfect-dedup baseline). A node that died during
	// the run is reported unreachable with zero counts — the caller must
	// account for its computes from its own earlier scrape.
	Computes    uint64         `json:"computes"`
	PerTarget   []TargetReport `json:"per_target"`
	Unreachable int            `json:"unreachable"`
}

// loader runs the workload: one client (retries, backoff, per-target
// breaker) per node, shared counters.
type loader struct {
	targets []string
	clients []*client.Client

	ok, c4xx, c5xx, transport, failovers, chaos atomic.Uint64
}

func newLoader(targets []string) *loader {
	l := &loader{targets: targets}
	for i, t := range targets {
		l.clients = append(l.clients, client.New(t, client.Config{
			MaxAttempts:      2,
			BaseBackoff:      20 * time.Millisecond,
			MaxBackoff:       200 * time.Millisecond,
			HTTPClient:       &http.Client{Timeout: 10 * time.Second},
			BreakerThreshold: 4,
			BreakerCooldown:  500 * time.Millisecond,
			JitterSeed:       uint64(i + 1),
		}))
	}
	return l
}

// doLogical runs one logical request: try the start target, fail over on
// transport errors and 5xx, stop on success or 4xx. Reports success.
func (l *loader) doLogical(ctx context.Context, t reqT, start int, chaosSpec string) bool {
	var hdr map[string]string
	if chaosSpec != "" {
		hdr = map[string]string{"X-Fault-Inject": chaosSpec}
		l.chaos.Add(1)
	}
	lastStatus := 0
	for j := 0; j < len(l.clients); j++ {
		cl := l.clients[(start+j)%len(l.clients)]
		status, err := cl.PostJSON(ctx, t.path, hdr, t.body, nil)
		if err == nil {
			l.ok.Add(1)
			return true
		}
		if status >= 400 && status < 500 {
			l.c4xx.Add(1)
			return false
		}
		lastStatus = status
		if j < len(l.clients)-1 {
			l.failovers.Add(1)
		}
	}
	if lastStatus >= 500 {
		l.c5xx.Add(1)
	} else {
		l.transport.Add(1)
	}
	return false
}

func main() {
	var (
		targetsFlag = flag.String("targets", "", "comma-separated base URLs (required)")
		requests    = flag.Int("requests", 800, "logical requests in the mixed phase")
		duration    = flag.Duration("duration", 0, "minimum mixed-phase duration")
		concurrency = flag.Int("concurrency", 16, "in-flight logical requests")
		sources     = flag.Int("sources", 32, "distinct generated source programs")
		seed        = flag.Int64("seed", 1, "workload seed")
		warm        = flag.Int("warm", 1, "warmup passes over every distinct cell")
		chaosEvery  = flag.Int("chaos-every", 0, "fault header on every nth mixed request (0 = off)")
		minOK       = flag.Float64("min-ok", 0, "exit 1 if the success ratio ends below this")
		asJSON      = flag.Bool("json", false, "print the report as JSON")
	)
	flag.Parse()
	targets := splitList(*targetsFlag)
	if len(targets) == 0 || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: loadgen -targets url[,url...] [flags]")
		os.Exit(2)
	}

	templates, distinct := universe(*sources)
	l := newLoader(targets)
	ctx := context.Background()
	startAt := time.Now()
	var warmN, mixedN uint64

	// Warm phase: every template once per pass, each pass shifting which
	// node fields which request, so artifacts spread across member caches
	// (the redundancy that keeps a later kill -9 from forcing recomputes).
	if *warm > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: warm phase: %d templates x %d passes over %d targets\n",
			len(templates), *warm, len(targets))
		var wg sync.WaitGroup
		sem := make(chan struct{}, *concurrency)
		for pass := 0; pass < *warm; pass++ {
			for i, t := range templates {
				wg.Add(1)
				sem <- struct{}{}
				warmN++
				go func(t reqT, start int) {
					defer wg.Done()
					defer func() { <-sem }()
					l.doLogical(ctx, t, start, "")
				}(t, (i+pass)%len(targets))
			}
		}
		wg.Wait()
	}

	// Mixed phase: uniform sampling from the template universe, target
	// round-robin by request index, optional chaos header rotation. Runs
	// until both the request budget and the minimum duration are spent.
	fmt.Fprintf(os.Stderr, "loadgen: mixed phase: %d+ requests, chaos-every=%d\n", *requests, *chaosEvery)
	rng := rand.New(rand.NewSource(*seed))
	var wg sync.WaitGroup
	sem := make(chan struct{}, *concurrency)
	mixedStart := time.Now()
	for i := 0; int(mixedN) < *requests || time.Since(mixedStart) < *duration; i++ {
		t := templates[rng.Intn(len(templates))]
		spec := ""
		if *chaosEvery > 0 && i%*chaosEvery == *chaosEvery-1 {
			spec = chaosRotation[(i / *chaosEvery)%len(chaosRotation)]
		}
		wg.Add(1)
		sem <- struct{}{}
		mixedN++
		go func(t reqT, start int, spec string) {
			defer wg.Done()
			defer func() { <-sem }()
			l.doLogical(ctx, t, start, spec)
		}(t, i%len(targets), spec)
	}
	wg.Wait()

	rep := Report{
		Targets:       targets,
		WarmRequests:  warmN,
		MixedRequests: mixedN,
		Requests:      warmN + mixedN,
		OK:            l.ok.Load(),
		HTTP4xx:       l.c4xx.Load(),
		HTTP5xx:       l.c5xx.Load(),
		TransportErrs: l.transport.Load(),
		Failovers:     l.failovers.Load(),
		ChaosInjected: l.chaos.Load(),
		DistinctCells: distinct,
		DurationMs:    time.Since(startAt).Milliseconds(),
	}
	if rep.Requests > 0 {
		rep.OKRatio = float64(rep.OK) / float64(rep.Requests)
	}
	for i, target := range targets {
		var snap server.Snapshot
		tr := TargetReport{Target: target}
		if _, err := l.clients[i].GetJSON(ctx, "/metrics", &snap); err != nil {
			tr.Unreachable = true
			rep.Unreachable++
		} else {
			tr.Compiles, tr.Annotations = snap.Compiles, snap.Annotations
			rep.Computes += snap.Compiles + snap.Annotations
		}
		rep.PerTarget = append(rep.PerTarget, tr)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Printf("loadgen: %d requests (%d warm, %d mixed): %d ok (%.2f%%), %d 4xx, %d 5xx, %d transport, %d failovers\n",
			rep.Requests, rep.WarmRequests, rep.MixedRequests, rep.OK, rep.OKRatio*100,
			rep.HTTP4xx, rep.HTTP5xx, rep.TransportErrs, rep.Failovers)
		fmt.Printf("loadgen: computes %d across %d reachable nodes (distinct cells %d)\n",
			rep.Computes, len(targets)-rep.Unreachable, rep.DistinctCells)
	}
	if *minOK > 0 && rep.OKRatio < *minOK {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: ok ratio %.4f below -min-ok %.4f\n", rep.OKRatio, *minOK)
		os.Exit(1)
	}
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
