// Command gcsafed is the reproduction pipeline as a long-running service:
// an HTTP/JSON daemon exposing annotate, check, compile, run and the
// differential treatment matrix, backed by a bounded worker pool and a
// content-addressed artifact cache (see internal/server).
//
// Usage:
//
//	gcsafed [flags]
//
// Flags:
//
//	-addr host:port    listen address (default 127.0.0.1:7996; :0 picks a
//	                   free port, printed on startup)
//	-workers n         concurrent pipeline executions (default: the shared
//	                   parallelism degree)
//	-parallel n        shared parallelism degree: sizes the worker pool's
//	                   default and the per-request /v1/matrix treatment
//	                   fan-out (default: GCSAFETY_PARALLEL, else GOMAXPROCS)
//	-queue n           waiting requests before load shedding (default 64)
//	-cache-bytes n     artifact cache LRU budget (default 256 MiB)
//	-cache-dir path    crash-safe disk tier for the artifact cache
//	                   (default off: memory-only)
//	-max-body n        request body cap in bytes (default 1 MiB)
//	-timeout d         per-request processing ceiling (default 30s)
//	-max-steps n       per-run interpreter instruction ceiling (default 200M)
//	-faults spec       process-wide fault injection spec (see
//	                   internal/faultinject); also settable via the
//	                   GCSAFETY_FAULTS environment variable
//	-fault-seed n      seed for -faults firing schedules (default 1)
//	-allow-fault-headers
//	                   honor per-request X-Fault-Inject / X-Fault-Seed
//	                   headers (default off: header-driven injection lets
//	                   any reachable client fail or delay requests, so it
//	                   must be an explicit opt-in; -chaos enables it for
//	                   its in-process daemon)
//	-peers urls        comma-separated base URLs of the other cluster
//	                   members; joins the cache-peering cluster (default
//	                   empty: standalone). Artifact keys are owned by
//	                   exactly one member (consistent hashing); misses for
//	                   remotely owned keys ask the owner before computing
//	                   locally, and any peer failure degrades to a local
//	                   compute.
//	-advertise url     base URL the other members reach this node at
//	                   (default http://<resolved listen address>; required
//	                   in explicit form when -addr binds 0.0.0.0 or
//	                   another address peers cannot dial)
//	-chaos             run the chaos smoke suite against an in-process
//	                   daemon instead of serving: replay the pipeline
//	                   request mix under injected faults and exit 0 iff
//	                   every request ended in a clean HTTP status and the
//	                   daemon stayed healthy
//	-chaos-requests n  requests per chaos run (default 64)
//	-pprof host:port   serve net/http/pprof on a second listener (default
//	                   off; keep it on a loopback address — profiles expose
//	                   internals)
//
// Endpoints:
//
//	POST /v1/annotate  C in, KEEP_LIVE/GC_same_obj-annotated C out
//	POST /v1/check     source-checking diagnostics only
//	POST /v1/compile   one treatment cell, content-addressed-cached
//	POST /v1/run       compile (cached) + execute under deadline and budget
//	                   (an "engine" field selects the execution backend;
//	                   unknown names are rejected with 400 and the valid
//	                   list, the empty string runs the startup-logged
//	                   default)
//	POST /v1/matrix    one generated program through the treatment matrix
//	POST /v1/peer/get  peer protocol: get-or-compute an owned artifact
//	POST /v1/peer/put  peer protocol: accept an artifact for an owned key
//	POST /v1/peer/update
//	                   admin: replace the member list (live rebalance)
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining or saturated)
//	GET  /metrics      JSON counters: traffic, latency, cache, GC stats,
//	                   recovered panics, disk-tier recovery
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gcsafety/internal/cluster"
	"gcsafety/internal/engine"
	"gcsafety/internal/faultinject"
	"gcsafety/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7996", "listen address")
		workers    = flag.Int("workers", 0, "concurrent pipeline executions (0 = the shared parallelism degree)")
		parallel   = flag.Int("parallel", 0, "shared parallelism degree for the worker pool and matrix fan-out (0 = GCSAFETY_PARALLEL, else GOMAXPROCS)")
		queue      = flag.Int("queue", 0, "queued requests before load shedding (0 = default 64)")
		cacheBytes = flag.Int64("cache-bytes", 0, "artifact cache byte budget (0 = default 256 MiB)")
		cacheDir   = flag.String("cache-dir", "", "crash-safe disk tier directory (empty = memory-only)")
		maxBody    = flag.Int64("max-body", 0, "request body cap in bytes (0 = default 1 MiB)")
		timeout    = flag.Duration("timeout", 0, "per-request processing ceiling (0 = default 30s)")
		maxSteps   = flag.Uint64("max-steps", 0, "per-run instruction ceiling (0 = default 200M)")
		faults     = flag.String("faults", "", "process-wide fault injection spec (empty = env/off)")
		faultSeed  = flag.Uint64("fault-seed", 1, "seed for -faults firing schedules")
		faultHdrs  = flag.Bool("allow-fault-headers", false, "honor per-request X-Fault-Inject headers (keep off on exposed addresses)")
		chaos      = flag.Bool("chaos", false, "run the chaos smoke suite and exit")
		chaosReqs  = flag.Int("chaos-requests", 64, "requests per chaos run")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs (empty = standalone)")
		advertise  = flag.String("advertise", "", "base URL peers reach this node at (empty = http://<listen address>)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gcsafed [flags]")
		os.Exit(2)
	}

	if *faults != "" {
		set, err := faultinject.Parse(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsafed: -faults: %v\n", err)
			os.Exit(2)
		}
		faultinject.SetGlobal(set)
	} else if _, err := faultinject.FromEnv(os.Getenv); err != nil {
		fmt.Fprintf(os.Stderr, "gcsafed: %s: %v\n", faultinject.EnvVar, err)
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:           *workers,
		Parallel:          *parallel,
		QueueDepth:        *queue,
		CacheBytes:        *cacheBytes,
		MaxBodyBytes:      *maxBody,
		RunTimeout:        *timeout,
		MaxSteps:          *maxSteps,
		CacheDir:          *cacheDir,
		AllowFaultHeaders: *faultHdrs,
	}

	if *chaos {
		os.Exit(runChaos(cfg, *faultSeed, *chaosReqs))
	}

	// The listener comes up before the Server: with -addr :0 the advertise
	// URL (and therefore cluster membership) only exists once the kernel
	// has picked the port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsafed: %v\n", err)
		os.Exit(1)
	}
	if *peers != "" {
		self := *advertise
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		p, err := cluster.New(cluster.Config{Self: self, Peers: splitList(*peers)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsafed: -peers: %v\n", err)
			os.Exit(2)
		}
		cfg.Peering = p
	}

	s := server.New(cfg)
	if err := s.DiskErr(); err != nil {
		// Not fatal by design: the daemon serves memory-only, but the
		// operator asked for a disk tier, so say loudly that it is absent.
		fmt.Fprintf(os.Stderr, "gcsafed: disk cache disabled: %v\n", err)
	} else if *cacheDir != "" {
		rs := s.DiskRecovery()
		fmt.Printf("gcsafed: disk cache: %d entries verified, %d quarantined, %d tmp removed\n",
			rs.Verified, rs.Quarantined, rs.TempRemoved)
	}
	if faultinject.Enabled() {
		fmt.Printf("gcsafed: fault injection active (seed %d)\n", *faultSeed)
	}

	if *pprofAddr != "" {
		// A second listener keeps profiling off the service port: the
		// pipeline mux stays exactly what handlers_test exercises, and the
		// operator can firewall the two addresses independently.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsafed: -pprof: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("gcsafed: pprof listening on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof registrations.
			if err := http.Serve(pln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "gcsafed: pprof: %v\n", err)
			}
		}()
	}

	// The resolved address line is part of the interface: the serve-smoke
	// harness (and anyone scripting -addr :0) parses it.
	fmt.Printf("gcsafed: listening on %s\n", ln.Addr())
	logEffectiveConfig(s, *pprofAddr, *faults, *faultSeed)

	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "gcsafed: %v\n", err)
		os.Exit(1)
	case got := <-sig:
		// Flip readiness first so load balancers stop sending traffic,
		// then let in-flight work finish.
		s.StartDrain()
		fmt.Printf("gcsafed: %v, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "gcsafed: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// logEffectiveConfig prints the configuration actually in force — every
// default resolved, the cluster membership as built — so an operator
// reading the log of a misbehaving node sees what it is really running
// with, not what the unit file claims.
func logEffectiveConfig(s *server.Server, pprofAddr, faults string, faultSeed uint64) {
	cfg := s.EffectiveConfig()
	fmt.Printf("gcsafed: config: workers=%d parallel=%d queue=%d timeout=%s max-steps=%d max-body=%d\n",
		cfg.Workers, cfg.Parallel, cfg.QueueDepth, cfg.RunTimeout, cfg.MaxSteps, cfg.MaxBodyBytes)
	dir := cfg.CacheDir
	if dir == "" {
		dir = "(memory-only)"
	}
	fmt.Printf("gcsafed: config: cache-bytes=%d cache-dir=%s\n", cfg.CacheBytes, dir)
	if faults == "" {
		faults = "(off)"
	}
	fmt.Printf("gcsafed: config: faults=%s fault-seed=%d allow-fault-headers=%v\n",
		faults, faultSeed, cfg.AllowFaultHeaders)
	// The engine line is the resolved default: what a /v1/run request with
	// no "engine" field actually executes on, plus the full registered set
	// a request may name.
	fmt.Printf("gcsafed: config: engine default=%s registered=%s\n",
		engine.DefaultName, strings.Join(engine.Names(), ","))
	if pprofAddr != "" {
		fmt.Printf("gcsafed: config: pprof=%s\n", pprofAddr)
	}
	if p := s.Peering(); p != nil {
		fmt.Printf("gcsafed: config: cluster self=%s members=%s\n",
			p.Self(), strings.Join(p.Members(), ","))
	} else {
		fmt.Printf("gcsafed: config: cluster=standalone\n")
	}
}
