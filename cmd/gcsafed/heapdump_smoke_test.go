package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"gcsafety/internal/heapdump"
	"gcsafety/internal/server"
	"gcsafety/internal/workloads"
)

// TestHeapdumpSmoke is the heap-introspection agreement gate
// (`make heapdump-smoke`): the same leak workload profiled two ways — the
// real ccrun binary with -heap-dump, and the daemon's /v1/heapdump
// endpoint — must describe the same heap. Execution is deterministic, so
// the two snapshots must agree exactly on live-object count and live
// bytes; a mismatch means one surface drifted from the interpreter.
func TestHeapdumpSmoke(t *testing.T) {
	dir := t.TempDir()
	leak := workloads.Leak()
	srcFile := filepath.Join(dir, "leak.c")
	if err := os.WriteFile(srcFile, []byte(leak.Source), 0o644); err != nil {
		t.Fatal(err)
	}

	// Surface one: the CLI. Both surfaces run the default pipeline
	// (optimize on, no annotation, ss10).
	bin := filepath.Join(dir, "ccrun")
	if out, err := exec.Command("go", "build", "-o", bin, "gcsafety/cmd/ccrun").CombinedOutput(); err != nil {
		t.Fatalf("go build ccrun: %v\n%s", err, out)
	}
	dumpFile := filepath.Join(dir, "dump.json")
	out, err := exec.Command(bin, "-heap-dump", dumpFile, srcFile).CombinedOutput()
	if err != nil {
		t.Fatalf("ccrun -heap-dump: %v\n%s", err, out)
	}
	if string(out) != leak.Want {
		t.Fatalf("ccrun output = %q, want %q", out, leak.Want)
	}
	data, err := os.ReadFile(dumpFile)
	if err != nil {
		t.Fatal(err)
	}
	var cli heapdump.Snapshot
	if err := json.Unmarshal(data, &cli); err != nil {
		t.Fatalf("dump JSON: %v", err)
	}

	// Surface two: the daemon, in-process.
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	body, err := json.Marshal(map[string]any{
		"name": "leak.c", "source": leak.Source, "optimize": true,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/heapdump", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rdata, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/heapdump: %d %s", resp.StatusCode, rdata)
	}
	var dresp server.HeapdumpResponse
	if err := json.Unmarshal(rdata, &dresp); err != nil {
		t.Fatal(err)
	}
	srv := dresp.Snapshot
	if srv == nil {
		t.Fatal("daemon returned no snapshot")
	}

	// The agreement assertions.
	if len(cli.Objects) == 0 {
		t.Fatal("CLI snapshot is empty")
	}
	if got, want := len(srv.Objects), len(cli.Objects); got != want {
		t.Errorf("live objects: daemon %d, ccrun %d", got, want)
	}
	if got, want := srv.TotalBytes(), cli.TotalBytes(); got != want {
		t.Errorf("live bytes: daemon %d, ccrun %d", got, want)
	}
	if cli.Trigger != heapdump.TriggerExit || srv.Trigger != heapdump.TriggerExit {
		t.Errorf("triggers = %q/%q, want exit/exit", cli.Trigger, srv.Trigger)
	}
}
