package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"gcsafety/internal/server"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gcsafed")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches the binary and scans stdout until the "listening
// on" line (startup may print disk-recovery and fault lines first),
// returning the base URL. The daemon is killed at test cleanup.
func startDaemon(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, " "); i >= 0 && strings.Contains(line, "listening on") {
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, "http://" + line[i+1:]
		}
	}
	t.Fatalf("no startup line; stderr: %s", cmd.Stderr)
	return nil, ""
}

func daemonPost(t *testing.T, base, path string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func daemonMetrics(t *testing.T, base string) server.Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestChaosSmoke is the `make chaos-smoke` gate: the binary's -chaos mode
// must replay the request mix under injected faults and report PASS.
func TestChaosSmoke(t *testing.T) {
	bin := buildDaemon(t)
	out, err := exec.Command(bin, "-chaos", "-chaos-requests", "48", "-fault-seed", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, out)
	}
	if !bytes.Contains(out, []byte("chaos: PASS")) {
		t.Fatalf("no PASS line:\n%s", out)
	}
	if !bytes.Contains(out, []byte("absorbed")) || bytes.Contains(out, []byte("absorbed 0 panics")) {
		t.Fatalf("panic recovery not exercised:\n%s", out)
	}
}

// TestKillRestartWarmCache is the crash-safety gate: artifacts written by
// a daemon that dies with SIGKILL (no shutdown path at all) must be
// served warm by the next daemon on the same -cache-dir, and a corrupted
// entry must be quarantined rather than served.
func TestKillRestartWarmCache(t *testing.T) {
	bin := buildDaemon(t)
	dir := t.TempDir()
	body := map[string]any{
		"name": "w.c", "source": `int main() { print_str("warm\n"); return 0; }`,
		"optimize": true, "annotate": "safe",
	}

	cmd, base := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-cache-dir", dir)
	code, data := daemonPost(t, base, "/v1/run", body)
	if code != http.StatusOK {
		t.Fatalf("first run: %d %s", code, data)
	}
	if bytes.Contains(data, []byte(`"cache_hit": true`)) {
		t.Fatalf("first run claimed a cache hit: %s", data)
	}

	// kill -9: no graceful path runs; the atomic write protocol alone
	// must have made the entries durable.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	_, base2 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-cache-dir", dir)
	code, data = daemonPost(t, base2, "/v1/run", body)
	if code != http.StatusOK {
		t.Fatalf("post-restart run: %d %s", code, data)
	}
	if !bytes.Contains(data, []byte(`"cache_hit": true`)) {
		t.Fatalf("kill -9 lost the warm cache: %s", data)
	}
	snap := daemonMetrics(t, base2)
	if snap.Compiles != 0 {
		t.Fatalf("restarted daemon recompiled %d times", snap.Compiles)
	}
	if snap.DiskRecovery == nil || snap.DiskRecovery.Verified == 0 {
		t.Fatalf("recovery stats missing: %+v", snap.DiskRecovery)
	}

	// Corrupt every entry on disk (flip a payload byte past the header);
	// the next daemon must quarantine them at startup and recompute.
	entries, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, p := range entries {
		fi, err := os.Stat(p)
		if err != nil || fi.IsDir() {
			continue
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0xFF
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted == 0 {
		t.Fatal("no disk entries found to corrupt")
	}

	_, base3 := startDaemon(t, bin, "-addr", "127.0.0.1:0", "-cache-dir", dir)
	snap = daemonMetrics(t, base3)
	if snap.DiskRecovery == nil || snap.DiskRecovery.Quarantined != corrupted {
		t.Fatalf("quarantined = %+v, want %d", snap.DiskRecovery, corrupted)
	}
	code, data = daemonPost(t, base3, "/v1/run", body)
	if code != http.StatusOK {
		t.Fatalf("run after quarantine: %d %s", code, data)
	}
	if bytes.Contains(data, []byte(`"cache_hit": true`)) {
		t.Fatalf("corrupt entry served as a cache hit: %s", data)
	}
	// The quarantine directory now holds the corrupt bytes for forensics.
	q, err := filepath.Glob(filepath.Join(dir, "quarantine", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != corrupted {
		t.Fatalf("quarantine holds %d files, want %d", len(q), corrupted)
	}
}

// TestEnvFaultActivation: GCSAFETY_FAULTS wires the same registry with no
// flags, and a bad spec is a startup error, not a silent no-op.
func TestEnvFaultActivation(t *testing.T) {
	bin := buildDaemon(t)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	cmd.Env = append(os.Environ(), "GCSAFETY_FAULTS=not-a-spec")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad env spec accepted:\n%s", out)
	}
	if !bytes.Contains(out, []byte("GCSAFETY_FAULTS")) {
		t.Fatalf("error does not name the variable:\n%s", out)
	}

	cmd2 := exec.Command(bin, "-chaos", "-chaos-requests", "24")
	cmd2.Env = append(os.Environ(), "GCSAFETY_FAULTS=server.handler=sleep,ms=1")
	out2, err := cmd2.CombinedOutput()
	if err != nil {
		t.Fatalf("chaos under env faults: %v\n%s", err, out2)
	}
	if !bytes.Contains(out2, []byte("chaos: PASS")) {
		t.Fatalf("chaos did not pass under env faults:\n%s", out2)
	}
}
