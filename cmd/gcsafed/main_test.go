package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"gcsafety/internal/server"
)

// TestServeSmoke is the end-to-end daemon gate (`make serve-smoke`): build
// the real binary, start it on a random port, hit every endpoint, and
// assert the /metrics counters advanced.
func TestServeSmoke(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "gcsafed")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-timeout", "20s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = &bytes.Buffer{}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	// The daemon prints "gcsafed: listening on host:port" once bound.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr: %s", cmd.Stderr)
	}
	line := sc.Text()
	i := strings.LastIndex(line, " ")
	if i < 0 || !strings.Contains(line, "listening on") {
		t.Fatalf("unexpected startup line: %q", line)
	}
	base := "http://" + line[i+1:]

	post := func(path string, body any) (int, []byte) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, data
	}

	if code, data := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d %s", code, data)
	}
	var before server.Snapshot
	if code, data := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", code, data)
	} else if err := json.Unmarshal(data, &before); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}

	src := `int main() { print_str("smoke\n"); return 0; }`
	endpoints := []struct {
		path string
		body any
	}{
		{"/v1/annotate", map[string]any{"name": "s.c", "source": src}},
		{"/v1/check", map[string]any{"name": "s.c", "source": src}},
		{"/v1/compile", map[string]any{"name": "s.c", "source": src, "optimize": true, "annotate": "safe"}},
		{"/v1/run", map[string]any{"name": "s.c", "source": src, "optimize": true, "annotate": "safe", "validate": true}},
		{"/v1/matrix", map[string]any{"seed": 7, "steps": 4, "machines": []string{"ss10"}}},
	}
	for _, ep := range endpoints {
		code, data := post(ep.path, ep.body)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", ep.path, code, data)
		}
	}

	// Second identical run must be served from the artifact cache.
	if _, data := post("/v1/run", endpoints[3].body); !bytes.Contains(data, []byte(`"cache_hit": true`)) {
		t.Fatalf("repeated run not a cache hit: %s", data)
	}

	var after server.Snapshot
	if code, data := get("/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", code, data)
	} else if err := json.Unmarshal(data, &after); err != nil {
		t.Fatalf("/metrics JSON: %v", err)
	}
	for _, ep := range endpoints {
		if after.Endpoints[ep.path].Requests <= before.Endpoints[ep.path].Requests {
			t.Errorf("%s counter did not advance: %+v", ep.path, after.Endpoints[ep.path])
		}
	}
	if after.Cache.Misses == 0 || after.Cache.Hits == 0 {
		t.Errorf("cache counters did not advance: %+v", after.Cache)
	}
	if after.Runs.Programs < 2 || after.Runs.Collections == 0 && after.Runs.Cycles == 0 {
		t.Errorf("run/GC counters did not advance: %+v", after.Runs)
	}
	if after.Compiles == 0 {
		t.Errorf("compile counter did not advance: %+v", after.Compiles)
	}

	// Graceful shutdown: SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v; stderr: %s", err, cmd.Stderr)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not shut down after SIGTERM")
	}
}

func TestUsageError(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "gcsafed")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	err := exec.Command(bin, "positional").Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("err = %v, want exit status 2", err)
	}
}
