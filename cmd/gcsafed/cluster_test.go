package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildLoadgen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "loadgen")
	if out, err := exec.Command("go", "build", "-o", bin, "gcsafety/cmd/loadgen").CombinedOutput(); err != nil {
		t.Fatalf("go build loadgen: %v\n%s", err, out)
	}
	return bin
}

// freePorts reserves n distinct loopback ports. Cluster membership must
// be known before any node starts, so :0 self-assignment cannot work;
// listen-then-close is the standard (slightly racy, practically safe)
// trade.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

// loadgenReport mirrors cmd/loadgen's Report (the fields the gate reads).
type loadgenReport struct {
	Requests      uint64  `json:"requests"`
	OK            uint64  `json:"ok"`
	HTTP5xx       uint64  `json:"http_5xx"`
	TransportErrs uint64  `json:"transport_errors"`
	Failovers     uint64  `json:"failovers"`
	OKRatio       float64 `json:"ok_ratio"`
	DistinctCells int     `json:"distinct_cells"`
	Computes      uint64  `json:"computes"`
	Unreachable   int     `json:"unreachable"`
}

// TestClusterSmoke is the `make cluster-smoke` gate: a 3-node cluster
// under mixed load with chaos fault rotation must survive one member
// dying by kill -9 mid-run with ≥99% of logical requests succeeding, and
// the cluster-wide compute count must stay within 1.2x the perfect-dedup
// baseline (every distinct artifact computed exactly once).
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster smoke is a multi-process suite")
	}
	daemon := buildDaemon(t)
	loadgen := buildLoadgen(t)
	ports := freePorts(t, 3)

	urls := make([]string, 3)
	for i, p := range ports {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", p)
	}
	cmds := make([]*exec.Cmd, 3)
	for i := range urls {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cmd, _ := startDaemon(t, daemon,
			"-addr", fmt.Sprintf("127.0.0.1:%d", ports[i]),
			"-peers", strings.Join(peers, ","),
			"-allow-fault-headers",
			"-workers", "6",
		)
		cmds[i] = cmd
	}

	// The load: warm passes spread every artifact over at least two member
	// caches, then a mixed phase long enough to straddle the kill below.
	lg := exec.Command(loadgen,
		"-targets", strings.Join(urls, ","),
		"-warm", "2",
		"-requests", "600",
		"-sources", "24",
		"-chaos-every", "6",
		"-concurrency", "8",
		"-duration", "4s",
		"-min-ok", "0.99",
		"-json",
	)
	var stdout bytes.Buffer
	lg.Stdout = &stdout
	stderr, err := lg.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until the mixed phase is underway so the kill is genuinely
	// mid-run, not before the load exists.
	sc := bufio.NewScanner(stderr)
	mixed := false
	for sc.Scan() {
		if strings.Contains(sc.Text(), "mixed phase") {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Fatalf("loadgen never reached the mixed phase")
	}
	go func() {
		for sc.Scan() {
		}
	}()
	time.Sleep(1 * time.Second)

	// The victim's computes are about to become unscrapeable; record them
	// first so the cluster-wide total stays honest.
	victim := 2
	preKill := scrapeComputes(t, urls[victim])
	if err := cmds[victim].Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	_, _ = cmds[victim].Process.Wait()

	// Operator rebalance: the survivors take over the dead member's arcs.
	survivors := []int{0, 1}
	for _, i := range survivors {
		var peerList []string
		for _, j := range survivors {
			if j != i {
				peerList = append(peerList, urls[j])
			}
		}
		code, body := daemonPost(t, urls[i], "/v1/peer/update",
			map[string]any{"peers": peerList})
		if code != http.StatusOK {
			t.Fatalf("peer update on survivor %d: %d %s", i, code, body)
		}
	}

	if err := lg.Wait(); err != nil {
		t.Fatalf("loadgen failed (availability gate): %v\nstdout: %s", err, stdout.String())
	}
	var rep loadgenReport
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("loadgen report: %v\n%s", err, stdout.String())
	}

	// Availability gate: ≥99% of logical requests succeeded even though a
	// third of the cluster died mid-run with chaos faults rotating.
	if rep.OKRatio < 0.99 {
		t.Fatalf("availability %.4f below 0.99: %+v", rep.OKRatio, rep)
	}
	if rep.Unreachable != 1 {
		t.Fatalf("expected exactly the killed node unreachable, got %d", rep.Unreachable)
	}
	if rep.Failovers == 0 {
		t.Fatal("no failovers recorded — the kill did not exercise the failover path")
	}

	// Dedup gate: cluster-wide computes (survivors' counters plus the
	// victim's last scrape) within 1.2x the distinct-artifact baseline.
	total := rep.Computes + preKill
	budget := uint64(float64(rep.DistinctCells) * 1.2)
	if total > budget {
		t.Fatalf("cluster computed %d times for %d distinct artifacts (budget %d): recompute storm",
			total, rep.DistinctCells, budget)
	}
	t.Logf("cluster smoke: %d requests, ok ratio %.4f, %d failovers, computes %d/%d (budget %d)",
		rep.Requests, rep.OKRatio, rep.Failovers, total, rep.DistinctCells, budget)

	// The survivors report a coherent 2-member cluster in /metrics.
	for _, i := range survivors {
		snap := daemonMetrics(t, urls[i])
		if snap.Cluster == nil || len(snap.Cluster.Members) != 2 {
			t.Fatalf("survivor %d cluster metrics: %+v", i, snap.Cluster)
		}
		if snap.Cluster.Rebalances == 0 {
			t.Fatalf("survivor %d recorded no rebalance", i)
		}
	}
}

func scrapeComputes(t *testing.T, base string) uint64 {
	t.Helper()
	snap := daemonMetrics(t, base)
	return snap.Compiles + snap.Annotations
}

// TestStartupConfigLog: the daemon must log its effective configuration —
// defaults resolved, cluster membership as built — so the log of a
// misbehaving node states what it actually ran with.
func TestStartupConfigLog(t *testing.T) {
	bin := buildDaemon(t)
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-workers", "3",
		"-cache-bytes", "1048576",
		"-allow-fault-headers",
		"-peers", "http://127.0.0.1:9,http://127.0.0.1:10",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	want := map[string]bool{
		"workers=3":                      false, // explicit flag echoed
		"queue=64":                       false, // default resolved, not zero
		"cache-bytes=1048576":            false,
		"cache-dir=(memory-only)":        false,
		"allow-fault-headers=true":       false,
		"cluster self=http://127.0.0.1:": false, // advertise derived from the listener
		"http://127.0.0.1:9":             false, // peer list echoed
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(10 * time.Second)
	lines := []string{}
	for sc.Scan() {
		select {
		case <-deadline:
			t.Fatalf("config log incomplete after 10s:\n%s", strings.Join(lines, "\n"))
		default:
		}
		line := sc.Text()
		lines = append(lines, line)
		for frag := range want {
			if strings.Contains(line, frag) {
				want[frag] = true
			}
		}
		done := true
		for _, seen := range want {
			done = done && seen
		}
		if done {
			return
		}
	}
	t.Fatalf("config log missing fragments %v:\n%s", want, strings.Join(lines, "\n"))
}
