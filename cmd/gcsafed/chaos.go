package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"gcsafety/internal/client"
	"gcsafety/internal/server"
)

// The chaos smoke suite: start a real daemon in-process, replay the
// serve-smoke request mix through the resilient client while every
// request carries a fault-injection header drawn from a fixed rotation,
// and demand that chaos degrades service, never crashes it:
//
//   - every request ends in a clean HTTP outcome — some 2xx/4xx/5xx
//     response (possibly after retries). Transport-level failures
//     (connection reset, EOF mid-body) mean a handler escaped the
//     recovery middleware and fail the run;
//   - the daemon is still live and ready afterwards: /healthz and
//     /readyz return 200 and /metrics parses;
//   - every panic the rotation injected was absorbed and counted.
//
// The rotation is deterministic — request i always carries spec
// chaosSpecs[i % len] with seed seed+i — so a chaos failure reproduces
// with the same flags.

// chaosSpecs is the fault rotation. Each entry exercises a different
// fault point (or the control path); probabilities keep the mix from
// failing every single request so cache/retry paths run too.
var chaosSpecs = []string{
	"", // control: no fault header at all
	"server.handler=error,p=0.6,msg=chaos-500",
	// times=1, not a probability: every rotation through this entry must
	// panic exactly once (the retry then succeeds), so a chaos run always
	// exercises the recovery middleware.
	"server.handler=panic,times=1,msg=chaos-panic",
	"server.handler=sleep,ms=3",
	"gc.alloc=error,p=0.02,msg=chaos-oom",
	"gc.alloc=error,after=40,msg=chaos-oom-late",
	"gc.collect.force=error,p=0.25",
	"interp.step=error,p=0.5,msg=chaos-abort",
	"interp.step=sleep,p=0.5,ms=2",
	"artifact.disk.read=error,p=0.7,msg=chaos-disk",
	"artifact.disk.write=error,p=0.7,msg=chaos-disk",
	// The snapshot-capture point: /v1/heapdump requests in the mix turn
	// into 500s (capture lost), every other endpoint ignores it.
	"heapdump.capture=error,p=0.5,msg=chaos-dump-lost",
	"server.handler=error,p=0.3;gc.alloc=error,p=0.05;interp.step=sleep,p=0.2,ms=1",
}

// chaosBodies is the request mix, mirroring the serve-smoke suite plus a
// malformed request so 4xx outcomes appear under fault load too.
var chaosBodies = []struct {
	path string
	body map[string]any
}{
	{"/v1/annotate", map[string]any{"name": "c.c", "source": chaosSrc}},
	{"/v1/check", map[string]any{"name": "c.c", "source": chaosSrc}},
	{"/v1/compile", map[string]any{"name": "c.c", "source": chaosSrc, "optimize": true, "annotate": "safe"}},
	{"/v1/run", map[string]any{"name": "c.c", "source": chaosSrc, "optimize": true, "annotate": "safe", "validate": true}},
	{"/v1/run", map[string]any{"name": "a.c", "source": chaosAllocSrc, "annotate": "safe"}},
	{"/v1/matrix", map[string]any{"seed": 11, "steps": 3, "machines": []string{"ss10"}}},
	{"/v1/heapdump", map[string]any{"name": "a.c", "source": chaosAllocSrc, "report": true}},
	{"/v1/run", map[string]any{"source": "int main( {"}}, // parse error: a 4xx
}

const chaosSrc = `
int main() {
    print_str("chaos\n");
    return 0;
}
`

const chaosAllocSrc = `
int main() {
    int i;
    char *keep = (char *)GC_malloc(8);
    for (i = 0; i < 200; i = i + 1) {
        char *p = (char *)GC_malloc(48);
        *p = 'x';
    }
    *keep = 'k';
    return 0;
}
`

// chaosBody returns the body for request i. Rotation entries that
// inject disk faults get a key-unique body: the artifact cache touches
// the disk tier only on a memory miss, so without a fresh cache key
// those requests would be absorbed by the memory tier and the injected
// disk faults would be unreachable.
func chaosBody(i int, spec string, body map[string]any) map[string]any {
	if !strings.Contains(spec, "artifact.disk") {
		return body
	}
	out := make(map[string]any, len(body))
	for k, v := range body {
		out[k] = v
	}
	if src, ok := out["source"].(string); ok {
		out["source"] = fmt.Sprintf("%s// chaos %d\n", src, i)
	} else if seed, ok := out["seed"].(int); ok {
		out["seed"] = seed + i
	}
	return out
}

// runChaos executes the suite and returns the process exit code.
func runChaos(cfg server.Config, seed uint64, requests int) int {
	if requests <= 0 {
		requests = 64
	}
	// The rotation is delivered via X-Fault-Inject, so the in-process
	// daemon must opt in (the listening daemon still defaults to off).
	cfg.AllowFaultHeaders = true
	// Chaos wants the disk fault points reachable: give the daemon a
	// scratch disk tier when the operator did not supply one.
	if cfg.CacheDir == "" {
		dir, err := os.MkdirTemp("", "gcsafed-chaos-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsafed: chaos: %v\n", err)
			return 1
		}
		defer os.RemoveAll(dir)
		cfg.CacheDir = dir
	}

	s := server.New(cfg)
	if err := s.DiskErr(); err != nil {
		fmt.Fprintf(os.Stderr, "gcsafed: chaos: disk tier: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcsafed: chaos: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("gcsafed: chaos: daemon on %s, %d requests, seed %d\n", base, requests, seed)

	// Retries stay cheap (the suite injects a lot of 500s) and the
	// breaker stays on: tripping it is fine, fast-fails count as clean.
	cl := client.New(base, client.Config{
		MaxAttempts: 3,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		JitterSeed:  seed,
	})

	var (
		unclean     int
		okResp      int
		errResp     int
		fastFails   int
		panicsAsked uint64
	)
	ctx := context.Background()
	for i := 0; i < requests; i++ {
		req := chaosBodies[i%len(chaosBodies)]
		spec := chaosSpecs[i%len(chaosSpecs)]
		var hdr map[string]string
		if spec != "" {
			hdr = map[string]string{
				"X-Fault-Inject": spec,
				"X-Fault-Seed":   fmt.Sprint(seed + uint64(i)),
			}
		}
		status, err := cl.PostJSON(ctx, req.path, hdr, chaosBody(i, spec, req.body), nil)
		switch {
		case err == nil:
			okResp++
		case errors.Is(err, client.ErrCircuitOpen):
			// The client protecting itself is correct behavior, not a
			// daemon failure.
			fastFails++
		default:
			var se *client.StatusError
			if errors.As(err, &se) {
				errResp++
			} else {
				unclean++
				fmt.Fprintf(os.Stderr, "gcsafed: chaos: UNCLEAN %s (spec %q): %v\n", req.path, spec, err)
			}
		}
		_ = status
	}

	// The daemon must have survived: live, ready, and still serving.
	var health map[string]string
	if _, err := cl.GetJSON(ctx, "/healthz", &health); err != nil || health["status"] != "ok" {
		fmt.Fprintf(os.Stderr, "gcsafed: chaos: daemon unhealthy after run: %v %v\n", health, err)
		return 1
	}
	var ready map[string]string
	if _, err := cl.GetJSON(ctx, "/readyz", &ready); err != nil || ready["status"] != "ready" {
		fmt.Fprintf(os.Stderr, "gcsafed: chaos: daemon not ready after run: %v %v\n", ready, err)
		return 1
	}
	var snap server.Snapshot
	if _, err := cl.GetJSON(ctx, "/metrics", &snap); err != nil {
		fmt.Fprintf(os.Stderr, "gcsafed: chaos: /metrics: %v\n", err)
		return 1
	}
	panicsAsked = snap.Panics

	var diskFaults uint64
	if snap.Cache.Disk != nil {
		diskFaults = snap.Cache.Disk.ReadErrors + snap.Cache.Disk.WriteErrors
	}
	st := cl.Stats()
	fmt.Printf("gcsafed: chaos: %d requests: %d ok, %d error-status, %d fast-fail, %d unclean; "+
		"%d retries, %d breaker trips; daemon absorbed %d panics, %d disk faults\n",
		requests, okResp, errResp, fastFails, unclean, st.Retries, st.BreakerTrips, panicsAsked, diskFaults)

	if unclean > 0 {
		fmt.Fprintln(os.Stderr, "gcsafed: chaos: FAIL: transport-level failures escaped the recovery middleware")
		return 1
	}
	if okResp == 0 {
		fmt.Fprintln(os.Stderr, "gcsafed: chaos: FAIL: no request ever succeeded")
		return 1
	}
	if requests > len(chaosSpecs) && panicsAsked == 0 {
		fmt.Fprintln(os.Stderr, "gcsafed: chaos: FAIL: injected panics never reached the recovery middleware")
		return 1
	}
	// The rotation's artifact.disk specs must actually have reached the
	// tier (they ride the request context down through the cache): a zero
	// here means the suite silently stopped exercising disk failures.
	if requests > len(chaosSpecs) && diskFaults == 0 {
		fmt.Fprintln(os.Stderr, "gcsafed: chaos: FAIL: injected disk faults never reached the disk tier")
		return 1
	}
	fmt.Println("gcsafed: chaos: PASS")
	return 0
}
