// Command benchtables regenerates every table in the paper's evaluation —
// the three running-time slowdown tables (SPARCstation 2, SPARCstation 10,
// Pentium 90), the object-code size expansion table, and the postprocessor
// table — plus the elision and engine-throughput tables and the ablation
// tables DESIGN.md calls out.
//
// Usage:
//
//	benchtables [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"

	"gcsafety/internal/bench"
	"gcsafety/internal/machine"
)

func main() {
	ablations := flag.Bool("ablations", false, "also print the ablation tables")
	flag.Parse()

	fmt.Println("Reproduction of the tables in \"Simple Garbage-Collector-Safety\" (Boehm, PLDI 1996).")
	fmt.Println("Numbers are slowdown/expansion percentages relative to the unpreprocessed optimized build.")
	fmt.Println()

	for _, cfg := range machine.Configs() {
		t, err := bench.SlowdownTable(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}

	t, err := bench.CodeSizeTable(machine.SPARCstation10())
	if err != nil {
		fatal(err)
	}
	fmt.Println(t)

	t, err = bench.PostprocessorTable(machine.SPARCstation10())
	if err != nil {
		fatal(err)
	}
	fmt.Println(t)

	t, err = bench.ElisionTable(machine.SPARCstation10())
	if err != nil {
		fatal(err)
	}
	fmt.Println(t)

	// Host-side throughput of the two execution engines (wall clock, not
	// simulated time — varies run to run, see DESIGN.md).
	t, err = bench.EngineTable(machine.SPARCstation10())
	if err != nil {
		fatal(err)
	}
	fmt.Println(t)

	if !*ablations {
		return
	}
	for _, f := range []func(machine.Config) (*bench.Table, error){
		bench.AblationCallVsAsm,
		bench.AblationCopySuppression,
		bench.AblationIncDecExpansion,
		bench.AblationBaseHeuristic,
		bench.AblationCallSiteOnly,
	} {
		t, err := f(machine.SPARCstation10())
		if err != nil {
			fatal(err)
		}
		fmt.Println(t)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
	os.Exit(1)
}
