module gcsafety

go 1.22
