package gcsafety

import (
	"strings"
	"testing"

	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
)

const apiProgram = `
int main() {
    char *s = (char *)GC_malloc(32);
    strcpy(s, "public api");
    print_str(s + 7);
    return 0;
}
`

func TestAnnotateAPI(t *testing.T) {
	res, err := Annotate("api.c", apiProgram, Safe())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "KEEP_LIVE(s + 7, s)") {
		t.Fatalf("annotated output:\n%s", res.Output)
	}
	chk, err := Annotate("api.c", apiProgram, Checked())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chk.Output, "GC_same_obj") {
		t.Fatalf("checked output:\n%s", chk.Output)
	}
}

func TestRunAPI(t *testing.T) {
	res, err := Run("api.c", apiProgram, Pipeline{
		Annotate:        true,
		AnnotateOptions: Safe(),
		Optimize:        true,
		Postprocess:     true,
		Exec:            interp.Options{Validate: true, GCEveryInstrs: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exec.Output != "api" {
		t.Fatalf("output = %q", res.Exec.Output)
	}
	if res.Annotate == nil || res.Annotate.Inserted == 0 {
		t.Fatal("annotation result missing")
	}
	if res.Program.Size() == 0 {
		t.Fatal("empty program")
	}
}

func TestBuildAPI(t *testing.T) {
	cfg := machine.Pentium90()
	prog, ann, err := Build("api.c", apiProgram, Pipeline{Optimize: true, Machine: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if ann != nil {
		t.Fatal("annotation result should be nil when annotation is off")
	}
	if _, ok := prog.Funcs["main"]; !ok {
		t.Fatal("main not compiled")
	}
}

func TestParseAPI(t *testing.T) {
	f, err := Parse("api.c", apiProgram)
	if err != nil {
		t.Fatal(err)
	}
	if f.FuncByName("main") == nil {
		t.Fatal("main not found")
	}
	if _, err := Parse("bad.c", "int f( {"); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestRunAPIErrors(t *testing.T) {
	if _, err := Run("bad.c", "not C at all @@@", Pipeline{}); err == nil {
		t.Fatal("expected an error")
	}
	if _, err := Run("none.c", "int f() { return 0; }", Pipeline{
		Exec: interp.Options{Entry: "main"},
	}); err == nil {
		t.Fatal("missing main not reported")
	}
}
