package gcsafety

// One testing.B benchmark per table (and figure-equivalent) in the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each benchmark
// regenerates its table from scratch — workload build + deterministic
// simulated execution — and reports the table's cells as custom metrics so
// `go test -bench` output carries the reproduced numbers. EXPERIMENTS.md
// records the paper-vs-measured comparison.

import (
	"fmt"
	"testing"

	"gcsafety/internal/bench"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/workloads"
)

func reportTable(b *testing.B, t *bench.Table) {
	b.Helper()
	for _, r := range t.Rows {
		for i, c := range r.Cells {
			if c.Fails || c.Unavail {
				continue
			}
			b.ReportMetric(c.Pct, fmt.Sprintf("%%%s/%s", sanitize(t.Columns[i]), r.Workload))
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', ',':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkTableSS2 regenerates the paper's first table: running-time
// slowdowns on the SPARCstation 2.
func BenchmarkTableSS2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.SlowdownTable(machine.SPARCstation2())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkTableSS10 regenerates the SPARCstation 10 running-time table.
func BenchmarkTableSS10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.SlowdownTable(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkTableP90 regenerates the Pentium 90 running-time table.
func BenchmarkTableP90(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.SlowdownTable(machine.Pentium90())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkTableCodeSize regenerates the object-code expansion table.
func BenchmarkTableCodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.CodeSizeTable(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkTablePostprocessor regenerates the final table: residual
// overheads after the peephole postprocessor.
func BenchmarkTablePostprocessor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.PostprocessorTable(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkTableHazards regenerates the temporal/concurrency extension's
// hazard table: the catalogue of promoted hazard workloads under the safe,
// temporal and concurrent-mutator treatments. Detected bugs ("<fails>")
// carry no metric; the surviving cells report their slowdowns.
func BenchmarkTableHazards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.HazardTable(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkTableElision regenerates the liveness-elision table: each
// classic treatment next to its elided twin, as slowdowns over the
// optimized baseline. The gawk checked cells must both read "<fails>" —
// elision never drops a check that can fire.
func BenchmarkTableElision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.ElisionTable(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkAblationCallVsAsm compares the two KEEP_LIVE implementations
// (the paper's "terribly inefficient" opaque call vs. the empty asm).
func BenchmarkAblationCallVsAsm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationCallVsAsm(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkAblationCopySuppression toggles the paper's optimization (1).
func BenchmarkAblationCopySuppression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationCopySuppression(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkAblationIncDecExpansion toggles the paper's optimization (2).
func BenchmarkAblationIncDecExpansion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationIncDecExpansion(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkAblationBaseHeuristic toggles the paper's optimization (3).
func BenchmarkAblationBaseHeuristic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.AblationBaseHeuristic(machine.SPARCstation10())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + t.String())
			reportTable(b, t)
		}
	}
}

// BenchmarkAblationTriggerPolicy measures the collection-trigger regimes
// the paper's optimization (4) discusses: allocation-site-only versus an
// asynchronous collector firing between arbitrary instructions. Both
// regimes execute the annotated cordtest correctly; the metric reports how
// many collections each regime performed.
func BenchmarkAblationTriggerPolicy(b *testing.B) {
	w, _ := workloads.ByName("cordtest")
	cfg := machine.SPARCstation10()
	for i := 0; i < b.N; i++ {
		run := func(async uint64) *interp.Result {
			prog, _, err := Build(w.Name+".c", w.Source, Pipeline{
				Annotate: true, AnnotateOptions: Safe(), Optimize: true, Machine: &cfg,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := interp.Run(prog, interp.Options{
				Config: cfg, Input: w.Input, Validate: true,
				TriggerBytes: 16 << 10, GCEveryInstrs: async,
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Output != w.Want {
				b.Fatalf("wrong output under async=%d", async)
			}
			return res
		}
		callSite := run(0)
		async := run(9973)
		if i == 0 {
			b.ReportMetric(float64(callSite.GCStats.Collections), "collections/allocsite")
			b.ReportMetric(float64(async.GCStats.Collections), "collections/async")
		}
	}
}

// BenchmarkInterpThroughput measures raw interpreter speed — simulated
// megacycles per host second — on the two heaviest workloads. This is the
// number the dispatch fast path in internal/interp/internal/dispatch is
// tuned against; EXPERIMENTS.md records its history.
func BenchmarkInterpThroughput(b *testing.B) {
	cfg := machine.SPARCstation10()
	for _, name := range []string{"gawk", "gs"} {
		w, ok := workloads.ByName(name)
		if !ok {
			b.Fatalf("no workload %q", name)
		}
		b.Run(name, func(b *testing.B) {
			prog, _, err := Build(w.Name+".c", w.Source, Pipeline{Optimize: true, Machine: &cfg})
			if err != nil {
				b.Fatal(err)
			}
			var cycles uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := interp.Run(prog, interp.Options{Config: cfg, Input: w.Input})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(cycles)*float64(b.N)/sec/1e6, "Mcycles/sec")
			}
		})
	}
}

// BenchmarkEngineThroughput measures both execution engines — the
// switch-dispatch interpreter and the closure-threaded backend — on the
// two heaviest workloads, in simulated megacycles per host second. The
// engines produce bit-identical simulated results (see the equivalence
// tests and the fuzz matrix's engine twins); this benchmark is the
// wall-clock half of the story, and BENCH_PR10.json records the
// threaded/interp speedup it demonstrates.
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := machine.SPARCstation10()
	for _, name := range []string{"gawk", "gs"} {
		w, ok := workloads.ByName(name)
		if !ok {
			b.Fatalf("no workload %q", name)
		}
		prog, _, err := Build(w.Name+".c", w.Source, Pipeline{Optimize: true, Machine: &cfg})
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []string{"interp", "threaded"} {
			b.Run(name+"/"+eng, func(b *testing.B) {
				var cycles uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := interp.Run(prog, interp.Options{Config: cfg, Input: w.Input, Engine: eng})
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
				}
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(cycles)*float64(b.N)/sec/1e6, "Mcycles/sec")
				}
			})
		}
	}
}

// BenchmarkAllTables regenerates every table of the evaluation from a cold
// cache, sequentially (width 1) and with the parallel cell fan-out
// (default width). The two variants produce byte-identical tables — see
// TestTablesParallelDeterministic — so this benchmark is purely about
// wall clock.
func BenchmarkAllTables(b *testing.B) {
	all := func() error {
		for _, cfg := range machine.Configs() {
			if _, err := bench.SlowdownTable(cfg); err != nil {
				return err
			}
		}
		cfg := machine.SPARCstation10()
		if _, err := bench.CodeSizeTable(cfg); err != nil {
			return err
		}
		_, err := bench.PostprocessorTable(cfg)
		return err
	}
	for _, mode := range []struct {
		name  string
		width int
	}{{"seq", 1}, {"par", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			bench.SetParallelism(mode.width)
			defer bench.SetParallelism(0)
			for i := 0; i < b.N; i++ {
				bench.ResetCache()
				if err := all(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloads reports the raw simulated cycle counts of each
// workload at -O, the denominators of every table.
func BenchmarkWorkloads(b *testing.B) {
	cfg := machine.SPARCstation10()
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := bench.Measure(w, bench.Opt, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(m.Cycles), "simcycles")
					b.ReportMetric(float64(m.Size), "siminstrs")
				}
			}
		})
	}
}
