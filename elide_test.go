package gcsafety

import (
	"errors"
	"fmt"
	"testing"

	"gcsafety/internal/artifact"
	"gcsafety/internal/fuzz"
	"gcsafety/internal/gcsafe"
	"gcsafety/internal/interp"
	"gcsafety/internal/machine"
	"gcsafety/internal/pipeline"
	"gcsafety/internal/workloads"
)

// TestElisionGoldenCounts pins the liveness analysis's per-workload
// elision counts. The numbers are goldens: an intentional analysis change
// updates them, an accidental one (a liveness bug, an eligibility
// regression) trips here first. They also prove the acceptance bar —
// every Zorn workload elides more than zero annotations in both modes.
func TestElisionGoldenCounts(t *testing.T) {
	type counts struct {
		inserted, considered, elided, live, bounds int
	}
	golden := map[string]counts{
		"cordtest/safe":    {inserted: 30, considered: 64, elided: 46, live: 46},
		"cordtest/checked": {inserted: 60, considered: 64, elided: 16, bounds: 16},
		"cfrac/safe":       {inserted: 35, considered: 65, elided: 35, live: 35},
		"cfrac/checked":    {inserted: 66, considered: 65, elided: 4, bounds: 4},
		"gawk/safe":        {inserted: 11, considered: 20, elided: 9, live: 9},
		"gawk/checked":     {inserted: 15, considered: 20, elided: 5, bounds: 5},
		"gs/safe":          {inserted: 32, considered: 78, elided: 56, live: 56},
		"gs/checked":       {inserted: 83, considered: 78, elided: 5, bounds: 5},
		"uaf/safe":         {inserted: 3, considered: 6, elided: 3, live: 3},
		"uaf/checked":      {inserted: 3, considered: 6, elided: 3, bounds: 3},
		"dblfree/safe":     {inserted: 2, considered: 6, elided: 4, live: 4},
		"dblfree/checked":  {inserted: 2, considered: 6, elided: 4, bounds: 4},
		"escape/safe":      {inserted: 2, considered: 4, elided: 2, live: 2},
		"escape/checked":   {inserted: 3, considered: 4, elided: 1, bounds: 1},
	}
	for _, w := range append(workloads.All(), workloads.Hazards()...) {
		for _, m := range []struct {
			name string
			opts AnnotateOptions
		}{
			{"safe", SafeElided()},
			{"checked", CheckedElided()},
		} {
			key := w.Name + "/" + m.name
			res, err := Annotate(w.Name+".c", w.Source, m.opts)
			if err != nil {
				t.Fatalf("%s: %v", key, err)
			}
			got := counts{
				inserted:   res.Inserted,
				considered: res.Considered,
				elided:     res.Elided,
				live:       res.ElidedLive,
				bounds:     res.ElidedBounds,
			}
			want, ok := golden[key]
			if !ok {
				t.Errorf("%s: no golden entry; got %+v", key, got)
				continue
			}
			if got != want {
				t.Errorf("%s: counts %+v, want %+v", key, got, want)
			}
			if got.elided == 0 {
				t.Errorf("%s: elision never fired", key)
			}
			if got.elided != got.live+got.bounds {
				t.Errorf("%s: elided %d != live %d + bounds %d", key, got.elided, got.live, got.bounds)
			}
		}
	}
}

// elideRun executes one workload under one treatment and flattens the
// outcome (output plus error string) for identity comparison.
func elideRun(t *testing.T, w workloads.Workload, opts AnnotateOptions, optimize, post bool, ex interp.Options) (string, string) {
	t.Helper()
	ex.Input = w.Input
	res, err := Run(w.Name+".c", w.Source, Pipeline{
		Annotate: true, AnnotateOptions: opts, Optimize: optimize, Postprocess: post, Exec: ex,
	})
	out := ""
	if res != nil && res.Exec != nil {
		out = res.Exec.Output
	}
	if err != nil {
		return out, err.Error()
	}
	return out, ""
}

// TestElisionOutputIdentity runs every workload under each elided
// treatment and its unelided twin on the benign-but-nontrivial schedule
// (async collections plus the premature-reclamation detector) and
// requires bit-identical output and identical faults. gawk's checked
// builds both fail the pointer-arithmetic check — with the same message —
// which is the detection-preservation half of the contract.
func TestElisionOutputIdentity(t *testing.T) {
	ex := interp.Options{GCEveryInstrs: 211, TriggerBytes: 8 << 10, Validate: true}
	for _, w := range append(workloads.All(), workloads.Hazards()...) {
		for _, tc := range []struct {
			name           string
			plain, elided  AnnotateOptions
			optimize, post bool
		}{
			{"safe-O", Safe(), SafeElided(), true, false},
			{"safe-O-post", Safe(), SafeElided(), true, true},
			{"checked-g", Checked(), CheckedElided(), false, false},
			{"checked-O", Checked(), CheckedElided(), true, false},
		} {
			po, pe := elideRun(t, w, tc.plain, tc.optimize, tc.post, ex)
			eo, ee := elideRun(t, w, tc.elided, tc.optimize, tc.post, ex)
			if po != eo || pe != ee {
				t.Errorf("%s %s: plain out=%q err=%q; elided out=%q err=%q",
					w.Name, tc.name, po, pe, eo, ee)
			}
		}
	}
}

// TestElisionAdversarialIdentity repeats the identity check under the
// hostile schedule — a collection between every two instructions and at
// every allocation — on the hazard workloads (small enough to afford it).
// Elided safe code must survive the adversary exactly like unelided safe
// code: a divergence here is a KEEP_LIVE that was load-bearing.
func TestElisionAdversarialIdentity(t *testing.T) {
	ex := interp.Options{GCEveryInstrs: 1, CollectAtEveryAlloc: true, Validate: true}
	for _, w := range workloads.Hazards() {
		for _, tc := range []struct {
			name           string
			plain, elided  AnnotateOptions
			optimize, post bool
		}{
			{"safe-O", Safe(), SafeElided(), true, false},
			{"safe-O-post", Safe(), SafeElided(), true, true},
			{"checked-g", Checked(), CheckedElided(), false, false},
		} {
			po, pe := elideRun(t, w, tc.plain, tc.optimize, tc.post, ex)
			eo, ee := elideRun(t, w, tc.elided, tc.optimize, tc.post, ex)
			if po != eo || pe != ee {
				t.Errorf("%s %s: plain out=%q err=%q; elided out=%q err=%q",
					w.Name, tc.name, po, pe, eo, ee)
			}
		}
	}
}

// TestElisionKeepsDetections is the hazard-preservation suite: every
// detection the checkers make without elision must still be made with it.
func TestElisionKeepsDetections(t *testing.T) {
	// gawk's intentional out-of-object pointer arithmetic: the checked
	// build reports it, so checked-elided must too (the violating access
	// is by construction not provably in-bounds).
	for _, w := range workloads.All() {
		if !w.CheckedFails {
			continue
		}
		_, err := Run(w.Name+".c", w.Source, Pipeline{
			Annotate: true, AnnotateOptions: CheckedElided(),
			Exec: interp.Options{Input: w.Input},
		})
		var ce *interp.CheckError
		if !errors.As(err, &ce) {
			t.Errorf("%s checked-elided: want a pointer check failure, got %v", w.Name, err)
		}
	}
	// The temporal hazard catalogue: annotate in temporal mode with Elide
	// requested. Temporal mode never elides (an elided GC_free would lose
	// the detection), so every workload the checker catches unelided it
	// must catch here too.
	temporalElided := Temporal()
	temporalElided.Elide = true
	for _, w := range workloads.Hazards() {
		plain, perr := Run(w.Name+".c", w.Source, Pipeline{
			Annotate: true, AnnotateOptions: Temporal(), Optimize: true,
			Exec: interp.Options{Input: w.Input, Temporal: true},
		})
		_ = plain
		var te *interp.TemporalError
		if !errors.As(perr, &te) {
			continue // not detected without elision either (e.g. escape needs mt)
		}
		_, eerr := Run(w.Name+".c", w.Source, Pipeline{
			Annotate: true, AnnotateOptions: temporalElided, Optimize: true,
			Exec: interp.Options{Input: w.Input, Temporal: true},
		})
		if !errors.As(eerr, &te) {
			t.Errorf("%s temporal+elide: detection lost (plain %v, elided %v)", w.Name, perr, eerr)
		}
	}
	// The fuzz hazard corpus: generated programs seeding use-after-free /
	// double-free. The temporal treatment must detect them with Elide on,
	// exactly as the differential matrix requires without it.
	found := 0
	for seed := int64(1); seed <= 60 && found < 3; seed++ {
		p := GenerateProgram(seed, 12)
		if p.TemporalHazards == 0 {
			continue
		}
		found++
		for _, elide := range []bool{false, true} {
			r, err := fuzz.RunTreatment(p, fuzz.Treatment{
				Machine:  machine.SPARCstation10(),
				Annotate: fuzz.AnnotateTemporal,
				Optimize: true,
				Elide:    elide,
			})
			if err != nil {
				t.Fatalf("seed %d elide=%v: %v", seed, elide, err)
			}
			if !fuzz.IsTemporalFault(r.Err) {
				t.Errorf("seed %d elide=%v: temporal hazard not detected (%v)", seed, elide, r.Err)
			}
		}
	}
	if found == 0 {
		t.Fatal("no temporal-hazard seeds in 1..60; corpus assumption broken")
	}
}

// TestElisionSmokeWarmBuild is the elision half of the stage-graph gate:
// with Elide on, the walk gains the Liveness stage, and a warm rebuild
// must still be served entirely from the per-stage cache — 7 stages, 7
// hits — with the elision counts riding along on the report.
func TestElisionSmokeWarmBuild(t *testing.T) {
	runner := pipeline.NewRunner(artifact.New(0))
	w, ok := workloads.ByName("cordtest")
	if !ok {
		t.Fatal("cordtest workload missing")
	}
	opts := pipeline.Options{
		Annotate:        true,
		AnnotateOptions: gcsafe.Options{Elide: true},
		Optimize:        true,
		Machine:         machine.SPARCstation10(),
	}
	cold, err := runner.Build(t.Context(), w.Name+".c", w.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report.AllHits() {
		t.Fatal("cold build reported all cache hits")
	}
	warm, err := runner.Build(t.Context(), w.Name+".c", w.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(warm.Report.Stages); n != 7 {
		t.Fatalf("elided build walked %d stages, want 7 (incl. liveness)", n)
	}
	if !warm.Report.AllHits() {
		t.Fatalf("warm elided rebuild not fully cached: %+v", warm.Report.Stages)
	}
	for _, rep := range []*pipeline.BuildReport{cold.Report, warm.Report} {
		if rep.Elision == nil || rep.Elision.Elided == 0 {
			t.Fatalf("build report missing elision counts: %+v", rep.Elision)
		}
	}
	es := runner.ElisionStats()
	if es.Elided == 0 || es.Considered != es.Elided+es.Kept {
		t.Fatalf("runner elision stats inconsistent: %+v", es)
	}
}

// TestElisionSmokeDifferential runs a few generated programs through the
// full treatment matrix — which now carries the elided twins — and
// requires (a) zero violations and (b) that every elided cell classified
// exactly like its unelided twin.
func TestElisionSmokeDifferential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := GenerateProgram(seed, 10)
		m, err := RunMatrix(p, MatrixOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(m.Violations) > 0 {
			t.Fatalf("seed %d: %s", seed, fuzz.Describe(p, m.Violations))
		}
		for _, r := range m.Results {
			if !r.Elide {
				continue
			}
			twin := r.Treatment
			twin.Elide = false
			seen := false
			for _, q := range m.Results {
				if q.Treatment != twin {
					continue
				}
				seen = true
				if q.Output != r.Output || fmt.Sprint(q.Err) != fmt.Sprint(r.Err) {
					t.Errorf("seed %d %s vs %s: out=%q err=%v / out=%q err=%v",
						seed, r.Name(), q.Name(), r.Output, r.Err, q.Output, q.Err)
				}
			}
			if !seen {
				t.Errorf("seed %d: elided cell %s has no unelided twin in the matrix", seed, r.Name())
			}
		}
	}
}
