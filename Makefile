# Development gates for the gcsafety reproduction.
#
#   make check        the full pre-merge gate: gofmt, vet, build, tests under
#                     the race detector, the full (non-short) test suite, a
#                     10-second native-fuzzing smoke run per fuzz target, and
#                     the gcsafed serve-smoke and chaos-smoke runs
#   make test         tier-1: exactly what CI runs (see ROADMAP.md)
#   make fuzz-smoke   just the fuzzing smoke runs
#   make fuzz         a longer local fuzzing session (5 minutes per target)
#   make serve-smoke  build the real gcsafed binary, start it on a random
#                     port, hit every endpoint, assert /metrics advanced
#   make chaos-smoke  the fault-injection gate: the daemon's -chaos mode
#                     plus the kill -9 warm-cache-recovery test
#   make chaos        a heavier local chaos run (more requests, live daemon)
#   make serve        run the daemon locally on the default port
#   make bench        run the full benchmark suite and record it as
#                     BENCH_PR10.json at the repo root (benchdiff JSON; gate
#                     future changes with `make bench-compare`)
#   make bench-compare  diff the newest BENCH_*.json against the previous
#                     one with benchdiff (exits 1 on a >10% regression)
#   make bench-smoke  one-iteration benchmark pass piped through benchdiff
#                     -parse and compared against itself: proves the
#                     benchmarks run and the JSON round-trips
#   make pipeline-smoke  build one workload through the stage graph twice
#                     and assert the second build is 100% stage-cache hits
#   make elision-smoke  the liveness-elision gate: warm elided rebuilds are
#                     100% stage-cache hits (liveness stage included) and
#                     the differential matrix classifies every elided cell
#                     exactly like its unelided twin
#   make heapdump-smoke  profile the leak workload through both surfaces —
#                     the real ccrun binary with -heap-dump and the daemon's
#                     /v1/heapdump — and assert the two snapshots agree on
#                     live-object count and live bytes
#   make cluster-smoke  the distributed availability gate: 3 peered gcsafed
#                     nodes under loadgen's mixed load with chaos fault
#                     rotation, one node killed -9 mid-run; requires ≥99%
#                     of logical requests to succeed and cluster-wide
#                     computes within 1.2x the distinct-artifact baseline
#   make engine-smoke  the execution-engine gate: a warm threaded rebuild is
#                     100% stage-cache hits (lower stage included) and both
#                     engines agree exactly on Instrs/Cycles/output for all
#                     four Zorn workloads

GO ?= go
FUZZPKG := ./internal/fuzz
FUZZTARGETS := FuzzDifferential FuzzParserRoundtrip FuzzFaultInjection FuzzTemporalDifferential

.PHONY: check fmt-check vet build test race fuzz-smoke fuzz serve-smoke chaos-smoke chaos serve bench bench-compare bench-smoke pipeline-smoke elision-smoke heapdump-smoke cluster-smoke engine-smoke

check: fmt-check vet build race test bench-smoke fuzz-smoke pipeline-smoke elision-smoke engine-smoke serve-smoke chaos-smoke heapdump-smoke cluster-smoke

fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run uses -short: the differential matrix's 2000-program run is
# covered by `test` above, and under the race detector a 100-program slice
# exercises the same code at a tolerable cost.
race:
	$(GO) test -race -short ./...

fuzz-smoke:
	@for target in $(FUZZTARGETS); do \
		$(GO) test -run '^$$' -fuzz=$$target -fuzztime=10s $(FUZZPKG) || exit 1; \
	done

fuzz:
	@for target in $(FUZZTARGETS); do \
		$(GO) test -run '^$$' -fuzz=$$target -fuzztime=5m $(FUZZPKG) || exit 1; \
	done

# The end-to-end daemon gate: TestServeSmoke builds the real binary, starts
# it on a random port, exercises every endpoint and asserts the /metrics
# counters advanced. Run under the race detector, as check requires.
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' ./cmd/gcsafed

# The fault-injection gate: replay the request mix against a real daemon
# under injected errors/panics/latency (TestChaosSmoke wraps the binary's
# -chaos mode) and prove kill -9 cannot lose or corrupt the artifact
# cache (TestKillRestartWarmCache).
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSmoke|TestKillRestartWarmCache' ./cmd/gcsafed

chaos:
	$(GO) run ./cmd/gcsafed -chaos -chaos-requests 512

# The benchmark record: every benchmark run 5 times at a 100ms budget,
# captured as benchdiff JSON at the repo root. 100ms gives sub-millisecond
# benchmarks hundreds of iterations (a single 1x observation of a 300µs
# benchmark swings ±30% on identical code on this shared/steal-prone host)
# while the ~1s table sweeps still run one iteration. benchdiff -parse then
# collapses the -count repeats to the per-metric minimum — the fastest
# repeat is the least disturbed one, and the cold-cache first pass (which
# pays the workload compiles) is discarded with it. Compare a working tree
# against the previous record with: make bench && make bench-compare
BENCHOUT ?= BENCH_PR10.json
bench:
	$(GO) test -run '^$$' -bench . -benchtime 100ms -count 5 -timeout 30m . | $(GO) run ./cmd/benchdiff -parse > $(BENCHOUT)
	@echo "wrote $(BENCHOUT)"

# bench-compare gates the newest benchmark record against the one before
# it: the two most recent BENCH_*.json by modification time. Needs at
# least two records (run `make bench` after a change to produce the new
# one). Records are host-day-relative: this container's speed drifts
# more than the 10% gate between days (measured in EXPERIMENTS.md "The
# PR 10 record and cross-day host drift"), so when the gate fails,
# re-record the previous commit in a worktree on the same day and diff
# both records against that — drift moves both trees, a real regression
# moves only yours.
bench-compare:
	@set -- $$(ls -t BENCH_*.json 2>/dev/null); \
	if [ $$# -lt 2 ]; then \
		echo "bench-compare: need two BENCH_*.json records, have $$#"; exit 1; \
	fi; \
	new=$$1; old=$$2; \
	echo "benchdiff $$old $$new"; \
	$(GO) run ./cmd/benchdiff $$old $$new

# bench-smoke keeps the benchmark suite and the benchdiff pipeline honest
# without paying for a real measurement: one iteration of everything, parsed
# to JSON, diffed against itself (identity must pass the regression gate).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -count 1 . | $(GO) run ./cmd/benchdiff -parse > /tmp/bench-smoke.json
	$(GO) run ./cmd/benchdiff /tmp/bench-smoke.json /tmp/bench-smoke.json
	@rm -f /tmp/bench-smoke.json

# The stage-graph gate: a warm rebuild of a workload must be served
# entirely from the per-stage artifact cache (TestPipelineSmokeWarmBuild
# asserts 7/7 cache hits on the second build), under the race detector.
pipeline-smoke:
	$(GO) test -race -count=1 -run 'TestPipelineSmokeWarmBuild' ./internal/pipeline

# The elision gate: with the liveness analysis on, a warm rebuild must be
# 100% stage-cache hits (7 stages including liveness), and a differential
# matrix over the seed corpus must classify every elided cell exactly
# like its unelided twin.
elision-smoke:
	$(GO) test -race -count=1 -run 'TestElisionSmoke' .

# The heap-introspection agreement gate: TestHeapdumpSmoke runs the leak
# workload through ccrun -heap-dump and through POST /v1/heapdump and
# requires identical live-object counts and live bytes.
heapdump-smoke:
	$(GO) test -race -count=1 -run 'TestHeapdumpSmoke' ./cmd/gcsafed

# The execution-engine gate: TestEngineSmoke warm-rebuilds every Zorn
# workload for the threaded engine (must be 100% stage-cache hits, the
# closure-lowering stage included) and runs it on both engines (simulated
# instruction/cycle counts and output must be identical).
engine-smoke:
	$(GO) test -race -count=1 -run 'TestEngineSmoke' .

# The distributed gate: TestClusterSmoke builds gcsafed and loadgen, peers
# three real daemons, drives a mixed workload with chaos fault rotation,
# kills one node with SIGKILL mid-run, rebalances the survivors, and
# asserts the availability (≥99% ok) and dedup (≤1.2x baseline computes)
# contracts.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterSmoke' ./cmd/gcsafed

serve:
	$(GO) run ./cmd/gcsafed
