# Development gates for the gcsafety reproduction.
#
#   make check        the full pre-merge gate: vet, build, tests under the
#                     race detector, the full (non-short) test suite, and a
#                     10-second native-fuzzing smoke run per fuzz target
#   make test         tier-1: exactly what CI runs (see ROADMAP.md)
#   make fuzz-smoke   just the fuzzing smoke runs
#   make fuzz         a longer local fuzzing session (5 minutes per target)

GO ?= go
FUZZPKG := ./internal/fuzz
FUZZTARGETS := FuzzDifferential FuzzParserRoundtrip

.PHONY: check vet build test race fuzz-smoke fuzz

check: vet build race test fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run uses -short: the differential matrix's 2000-program run is
# covered by `test` above, and under the race detector a 100-program slice
# exercises the same code at a tolerable cost.
race:
	$(GO) test -race -short ./...

fuzz-smoke:
	@for target in $(FUZZTARGETS); do \
		$(GO) test -run '^$$' -fuzz=$$target -fuzztime=10s $(FUZZPKG) || exit 1; \
	done

fuzz:
	@for target in $(FUZZTARGETS); do \
		$(GO) test -run '^$$' -fuzz=$$target -fuzztime=5m $(FUZZPKG) || exit 1; \
	done
